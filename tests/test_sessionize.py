"""SESSIONIZE semantics: randomized parity against a per-user oracle.

The derived session column must behave exactly like a *stored* column
holding the per-user gap-based session ordinal. The oracle here is the
obvious pure-Python per-user loop; parity is checked two ways:

* unit level — :func:`~repro.cohana.operators.session_values` on every
  chunk of a compressed table vs the oracle over each user run
  (gap-boundary ties, single-event sessions, empty gaps);
* end to end — a table with the oracle's ordinals materialized as a
  stored measure column must produce row-identical results to the same
  query using ``SESSIONIZE`` over the column-free table, across every
  executor, scan mode and backend, on single-file and sharded tables.
"""

import random

import numpy as np
import pytest

from repro.cohana import CohanaEngine, render_query
from repro.cohana.operators import session_values
from repro.errors import BindError, ParseError, QueryError
from repro.cohort import SessionizeSpec
from repro.schema import ActivitySchema, LogicalType
from repro.storage import append_shard, compress
from repro.table import ActivityTable

from helpers import make_game_schema

GAP = 600


def oracle_sessions(times: list[int], gap: float) -> list[int]:
    """The reference semantics, one user at a time: the first tuple
    opens session 1; a tuple opens a new session exactly when its gap
    to the previous tuple *exceeds* ``gap`` (a tie stays inside)."""
    sessions: list[int] = []
    for i, t in enumerate(times):
        if not sessions:
            sessions.append(1)
        elif t - times[i - 1] > gap:
            sessions.append(sessions[-1] + 1)
        else:
            sessions.append(sessions[-1])
    return sessions


def random_rows(seed: int, n_users: int = 40) -> list[tuple]:
    """Random activity rows engineered to hit the edge cases: exact
    gap-boundary ties, single-event users, and long multi-session
    histories."""
    rng = random.Random(seed)
    rows = []
    for u in range(n_users):
        user = f"u{u:03d}"
        country = rng.choice(["Australia", "China", "Peru"])
        t = rng.randrange(0, 5_000)
        for i in range(rng.choice([1, 1, 2, 3, 5, 9])):
            action = "launch" if i == 0 else rng.choice(["shop", "fight"])
            rows.append((user, t, action, "dwarf", country,
                         rng.randrange(100)))
            t += rng.choice([1, GAP // 2, GAP, GAP, GAP + 1, 3 * GAP])
    return rows


def sessionized_schema() -> ActivitySchema:
    """The game schema plus the oracle's ordinals as a stored measure."""
    return ActivitySchema.build(
        user="player", time="time", action="action",
        dimensions={"role": LogicalType.STRING,
                    "country": LogicalType.STRING},
        measures={"gold": LogicalType.INT, "s": LogicalType.INT},
    )


def with_oracle_column(rows: list[tuple]) -> list[tuple]:
    """The same rows with the oracle's session ordinal appended."""
    by_user: dict[str, list[tuple]] = {}
    for row in sorted(rows, key=lambda r: (r[0], r[1])):
        by_user.setdefault(row[0], []).append(row)
    out = []
    for user_rows in by_user.values():
        ordinals = oracle_sessions([r[1] for r in user_rows], GAP)
        out.extend(row + (ordinal,)
                   for row, ordinal in zip(user_rows, ordinals))
    return out


#: Every sessionized query shape under test, paired with its stored-
#: column equivalent (same text minus the SESSIONIZE clause).
QUERIES = {
    "grouping_dimension": (
        'SELECT s, COHORTSIZE, AGE, UserCount() FROM {t} '
        'BIRTH FROM action = "launch" '
        '{sessionize}COHORT BY s'),
    "age_predicate": (
        'SELECT country, COHORTSIZE, AGE, Max(s) FROM {t} '
        'BIRTH FROM action = "launch" '
        'AGE ACTIVITIES IN s > 1 '
        '{sessionize}COHORT BY country'),
    "aggregate_input": (
        'SELECT country, COHORTSIZE, AGE, Sum(s) FROM {t} '
        'BIRTH FROM action = "launch" '
        '{sessionize}COHORT BY country'),
}
SESSIONIZE_CLAUSE = "SESSIONIZE (GAP = 600 seconds) AS s "


def _texts(name: str, table: str = "T") -> tuple[str, str]:
    """(sessionized text, stored-column text) for one query shape."""
    template = QUERIES[name]
    return (template.format(t=table, sessionize=SESSIONIZE_CLAUSE),
            template.format(t=table, sessionize=""))


@pytest.fixture(scope="module", params=[11, 29])
def rows(request):
    return random_rows(seed=request.param)


@pytest.fixture(scope="module")
def engines(rows):
    """(derived, stored): one engine sees the raw table, the other the
    same rows with the oracle's ordinals materialized."""
    derived = CohanaEngine()
    derived.create_table(
        "T", ActivityTable.from_rows(make_game_schema(),
                                     [r for r in rows]),
        target_chunk_rows=16)
    stored = CohanaEngine()
    stored.create_table(
        "T", ActivityTable.from_rows(sessionized_schema(),
                                     with_oracle_column(rows)),
        target_chunk_rows=16)
    return derived, stored


class TestSessionValuesUnit:
    def test_gap_boundary_tie_stays_inside(self):
        schema = make_game_schema()
        rows = [("u1", t, "launch", "dwarf", "Peru", 0)
                for t in (0, GAP, GAP + GAP, 2 * GAP + GAP + 1)]
        table = compress(ActivityTable.from_rows(schema, rows),
                         target_chunk_rows=64)
        values = session_values(table.chunks[0], "time", GAP)
        # diffs: 600 (tie, stays), 600 (tie, stays), 601 (new session)
        assert values.tolist() == [1, 1, 1, 2]

    def test_single_event_users_open_session_one(self):
        schema = make_game_schema()
        rows = [(f"u{i}", 10_000 * i, "launch", "dwarf", "Peru", 0)
                for i in range(5)]
        table = compress(ActivityTable.from_rows(schema, rows),
                         target_chunk_rows=2)
        for chunk in table.chunks:
            assert session_values(chunk, "time", GAP).tolist() == \
                [1] * chunk.n_rows

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_randomized_chunks_match_oracle(self, seed):
        schema = make_game_schema()
        table = compress(
            ActivityTable.from_rows(schema, random_rows(seed)),
            target_chunk_rows=16)
        checked_runs = 0
        for chunk in table.chunks:
            times = chunk.decode_codes("time")
            values = session_values(chunk, "time", GAP)
            _, starts, counts = chunk.users.arrays()
            for start, count in zip(starts, counts):
                run = slice(int(start), int(start) + int(count))
                assert values[run].tolist() == oracle_sessions(
                    [int(t) for t in times[run]], GAP)
                checked_runs += 1
        assert checked_runs >= 30  # many users across many chunks

    def test_empty_chunk_yields_empty(self):
        class _Empty:
            def decode_codes(self, name):
                return np.zeros(0, dtype=np.int64)

        values = session_values(_Empty(), "time", GAP)
        assert values.dtype == np.int64 and len(values) == 0


class TestDerivedVsStoredParity:
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    @pytest.mark.parametrize("executor", ["vectorized", "iterator"])
    @pytest.mark.parametrize("scan_mode", ["decoded", "compressed"])
    def test_kernels_and_scan_modes(self, engines, query_name, executor,
                                    scan_mode):
        derived, stored = engines
        text, stored_text = _texts(query_name)
        got = derived.query(text, executor=executor, scan_mode=scan_mode)
        want = stored.query(stored_text, executor=executor,
                            scan_mode=scan_mode)
        assert got.rows == want.rows
        assert got.rows  # the workload is never vacuous

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    @pytest.mark.parametrize("backend,jobs",
                             [("serial", 1), ("threads", 3)])
    def test_backends(self, engines, query_name, backend, jobs):
        derived, stored = engines
        text, stored_text = _texts(query_name)
        got = derived.query(text, backend=backend, jobs=jobs)
        assert got.rows == stored.query(stored_text).rows


class TestProcessesAndShards:
    @pytest.fixture(scope="class")
    def rows40(self):
        return random_rows(seed=47)

    @pytest.fixture(scope="class")
    def on_disk(self, tmp_path_factory, rows40):
        """The raw table saved once as a single file and once as a
        four-shard directory (user-disjoint batches)."""
        base = tmp_path_factory.mktemp("sessionize")
        table = ActivityTable.from_rows(
            make_game_schema(), rows40).sorted_by_primary_key()
        single = base / "T.cohana"
        from repro.storage import save
        save(compress(table, target_chunk_rows=16), single)
        sharded = base / "T"
        blocks = list(table.user_blocks())
        quarter = -(-len(blocks) // 4)
        for i in range(0, len(blocks), quarter):
            last = blocks[min(i + quarter, len(blocks)) - 1]
            append_shard(sharded, table.slice(blocks[i][1], last[2]),
                         target_chunk_rows=16)
        return single, sharded

    @pytest.fixture(scope="class")
    def stored_rows(self, rows40):
        eng = CohanaEngine()
        eng.create_table(
            "T", ActivityTable.from_rows(sessionized_schema(),
                                         with_oracle_column(rows40)),
            target_chunk_rows=16)
        return eng

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    @pytest.mark.parametrize("backend,jobs",
                             [("serial", 1), ("threads", 2),
                              ("processes", 2)])
    def test_on_disk_backends(self, on_disk, stored_rows, query_name,
                              backend, jobs):
        single, _ = on_disk
        engine = CohanaEngine()
        engine.load_table("T", single)
        text, stored_text = _texts(query_name)
        got = engine.query(text, backend=backend, jobs=jobs)
        assert got.rows == stored_rows.query(stored_text).rows

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    @pytest.mark.parametrize("backend,jobs",
                             [("serial", 1), ("processes", 2)])
    def test_sharded_matches_single_and_oracle(self, on_disk,
                                               stored_rows, query_name,
                                               backend, jobs):
        single, sharded = on_disk
        one, many = CohanaEngine(), CohanaEngine()
        one.load_table("T", single)
        many.load_table("T", sharded)
        text, stored_text = _texts(query_name)
        got = many.query(text, backend=backend, jobs=jobs)
        assert got.rows == one.query(text).rows
        assert got.rows == stored_rows.query(stored_text).rows


class TestSyntaxAndBinding:
    def test_render_round_trip(self, engines):
        derived, _ = engines
        for name in QUERIES:
            query = derived.parse(_texts(name)[0])
            assert derived.parse(render_query(query)) == query

    def test_default_column_name_is_session(self, engines):
        derived, _ = engines
        query = derived.parse(
            'SELECT country, COHORTSIZE, AGE, Max(session) FROM T '
            'BIRTH FROM action = "launch" '
            'SESSIONIZE (GAP = 10 minutes) COHORT BY country')
        assert query.sessionize == SessionizeSpec(column="session",
                                                  gap=600.0)

    @pytest.mark.parametrize("unit,seconds", [
        ("seconds", 45.0), ("minutes", 45 * 60.0), ("hours", 45 * 3600.0),
        ("day", 45 * 86400.0), ("", 45.0)])
    def test_gap_units(self, engines, unit, seconds):
        derived, _ = engines
        query = derived.parse(
            f'SELECT country, COHORTSIZE, AGE, UserCount() FROM T '
            f'BIRTH FROM action = "launch" '
            f'SESSIONIZE (GAP = 45 {unit}) COHORT BY country')
        assert query.sessionize.gap == seconds

    @pytest.mark.parametrize("text,match", [
        ('SESSIONIZE (GAP = 0 seconds)', "positive"),
        ('SESSIONIZE (GAP = -5 seconds)', "positive|number"),
        ('SESSIONIZE (GAP = 10 fortnights)', "unit"),
        ('SESSIONIZE (10 seconds)', "GAP"),
        ('SESSIONIZE (GAP = 10) SESSIONIZE (GAP = 20)', "duplicate"),
    ])
    def test_parse_errors(self, engines, text, match):
        derived, _ = engines
        with pytest.raises(ParseError, match=match):
            derived.parse(
                f'SELECT country, COHORTSIZE, AGE, UserCount() FROM T '
                f'BIRTH FROM action = "launch" {text} COHORT BY country')

    def test_stored_column_collision(self, engines):
        derived, _ = engines
        with pytest.raises(BindError, match="collides"):
            derived.parse(
                'SELECT country, COHORTSIZE, AGE, UserCount() FROM T '
                'BIRTH FROM action = "launch" '
                'SESSIONIZE (GAP = 10 minutes) AS country '
                'COHORT BY country')

    def test_spec_validates_eagerly(self):
        with pytest.raises(QueryError, match="positive"):
            SessionizeSpec(gap=0)
        with pytest.raises(QueryError, match="column"):
            SessionizeSpec(column="")
