"""Failure injection for the .cohana binary format.

A corrupted or truncated file must fail with a clean StorageError (or a
bounded decode error) — never a hang, a silent crash, or an unbounded
allocation from a crazy length field. Truncation at *every* byte boundary
is exhaustive on a small file; header corruption is byte-by-byte over the
fixed-layout prefix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, StorageError
from repro.storage import compress, deserialize, serialize

from helpers import make_table1

#: Exceptions a corrupted payload may legitimately surface. Anything
#: else (or a hang) is a bug.
ACCEPTABLE = (ReproError, ValueError, OverflowError, MemoryError,
              UnicodeDecodeError)

_PAYLOAD = serialize(compress(make_table1(), target_chunk_rows=4))


class TestTruncation:
    def test_every_prefix_fails_cleanly(self):
        for length in range(len(_PAYLOAD)):
            with pytest.raises(ACCEPTABLE):
                deserialize(_PAYLOAD[:length])

    def test_empty(self):
        with pytest.raises(StorageError):
            deserialize(b"")


class TestHeaderCorruption:
    def test_magic_bytes(self):
        for i in range(8):
            data = bytearray(_PAYLOAD)
            data[i] ^= 0xFF
            with pytest.raises(StorageError, match="magic"):
                deserialize(bytes(data))

    def test_version_bytes(self):
        data = bytearray(_PAYLOAD)
        data[8] ^= 0xFF
        with pytest.raises(StorageError, match="version"):
            deserialize(bytes(data))


@given(position=st.integers(min_value=10, max_value=len(_PAYLOAD) - 1),
       flip=st.integers(min_value=1, max_value=255))
@settings(max_examples=150, deadline=None)
def test_property_single_byte_corruption_is_contained(position, flip):
    """Flipping any single byte either still decodes (a harmless value
    change) or raises a clean, expected error."""
    data = bytearray(_PAYLOAD)
    data[position] ^= flip
    try:
        table = deserialize(bytes(data))
        # If it decodes, the structure must still be self-consistent.
        assert table.n_rows >= 0
        assert table.n_chunks == len(table.chunks)
    except ACCEPTABLE:
        pass


def test_roundtrip_still_intact():
    assert deserialize(_PAYLOAD).n_rows == 10
