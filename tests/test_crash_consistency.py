"""Crash consistency of the shard publish path, by fault injection.

Every manifest publish (append, compaction, retention) follows one
discipline: write new shard files (exclusive create + fsync), write
the full new manifest to a fsynced temp file, commit with a single
atomic ``os.replace``. These tests kill the process — via
``faultinject.FaultInjector`` — at every crash point of that path and
prove the recovery contract:

* a crash at any point **before** the ``os.replace`` leaves the table
  loadable at exactly the pre-publish generation, with the pre-publish
  rows and logical digest — zero partial state is readable;
* a crash **after** the replace means the publish committed: the table
  loads at exactly the new generation;
* torn files (writes truncated mid-flight by the crash) are never
  read: they sit outside the manifest until the GC reaps them, and a
  retried operation succeeds after (or despite) cleanup;
* there is no third outcome — no torn manifest, no mixed-generation
  shard set — under any injected crash, including a failure of the
  ``os.replace`` syscall itself.

The randomized suites then interleave append/compact/query across
seeds (results digest-identical to a never-compacted table on all
three backends) and run reader/appender/compactor threads
concurrently, asserting digest parity at every generation a reader
observes.
"""

import hashlib
import random
import threading

import pytest

from repro.cohana import CohanaEngine
from repro.datagen import GameConfig, generate
from repro.errors import StorageError
from repro.storage import (
    CRASH_POINTS,
    MANIFEST_NAME,
    append_shard,
    combine_logical,
    compact,
    compress,
    gc_shards,
    load_sharded,
    logical_digest_of,
    read_manifest,
    save,
    sharded,
)

from faultinject import FaultInjector, InjectedCrash

QUERY = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM G '
         'BIRTH FROM action = "launch" COHORT BY country')

#: Crash points that fire before the manifest ``os.replace`` commits —
#: recovery must land on the *old* generation; after the replace the
#: publish is committed and recovery lands on the new one.
PRE_COMMIT_POINTS = tuple(p for p in CRASH_POINTS
                          if p != "manifest_published")


def _user_batches(table, n):
    table = table.sorted_by_primary_key()
    blocks = list(table.user_blocks())
    per = max(1, -(-len(blocks) // n))
    return [table.slice(blocks[i][1], blocks[min(i + per, len(blocks))
                                             - 1][2])
            for i in range(0, len(blocks), per)]


@pytest.fixture(scope="module")
def parts():
    full = generate(GameConfig(n_users=18, seed=11))
    return _user_batches(full, 4)


@pytest.fixture
def shard_dir(tmp_path, parts):
    d = tmp_path / "G"
    for batch in parts[:3]:
        append_shard(d, batch, target_chunk_rows=64)
    return d


def _snapshot(directory):
    """(generation, sorted rows, combined logical digest) of the table
    as a fresh reader sees it right now. Loading also re-verifies every
    shard payload against the manifest, so a snapshot that returns at
    all is internally consistent."""
    table = load_sharded(directory)
    try:
        generation = table.generation
        rows = sorted(table.decompress().to_rows())
        logical = combine_logical(
            entry["logical_digest"]
            for entry in table.manifest["shards"])
    finally:
        table.release()
    return generation, rows, logical


def _assert_no_partial_state(directory):
    """Every shard the manifest lists exists on disk (a reload can
    never hit a missing or mixed file)."""
    manifest = read_manifest(directory)
    for entry in manifest["shards"]:
        assert (directory / entry["path"]).is_file()


class TestCrashDuringCompaction:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_every_point_recovers_exactly(self, shard_dir, point):
        gen0, rows0, logical0 = _snapshot(shard_dir)
        with FaultInjector(crash_at=point) as inj, \
                pytest.raises(InjectedCrash):
            compact(shard_dir)
        assert inj.crashed and inj.points_fired()[-1] == point

        generation, rows, logical = _snapshot(shard_dir)
        if point == "manifest_published":
            # The os.replace landed before the crash: committed.
            assert generation == gen0 + 1
        else:
            # Nothing before the replace may commit anything.
            assert generation == gen0
        assert rows == rows0
        assert logical == logical0  # compaction never changes rows
        _assert_no_partial_state(shard_dir)

    @pytest.mark.parametrize("point", PRE_COMMIT_POINTS)
    def test_retry_after_crash_succeeds(self, shard_dir, point):
        gen0, rows0, logical0 = _snapshot(shard_dir)
        with FaultInjector(crash_at=point), \
                pytest.raises(InjectedCrash):
            compact(shard_dir)
        # The retry reaps any leftover of the crashed attempt itself
        # (gc=True pre-cleans under the publish lock) and completes.
        result = compact(shard_dir)
        assert result.compacted
        generation, rows, logical = _snapshot(shard_dir)
        assert generation == gen0 + 1
        assert rows == rows0 and logical == logical0
        assert len(read_manifest(shard_dir)["shards"]) == 1

    @pytest.mark.parametrize("point,tear",
                             [("shard_written", 7),
                              ("manifest_tmp_written", 10)])
    def test_torn_write_is_never_read(self, shard_dir, point, tear):
        """Truncate the just-written file to a few bytes before
        crashing — the on-disk state an unsynced write can leave. The
        torn file must be invisible to readers and reaped by GC."""
        gen0, rows0, logical0 = _snapshot(shard_dir)
        with FaultInjector(crash_at=point, tear_bytes=tear) as inj, \
                pytest.raises(InjectedCrash):
            compact(shard_dir)
        torn = inj.fired[-1][1]
        assert torn is not None and torn.stat().st_size == tear
        assert _snapshot(shard_dir) == (gen0, rows0, logical0)
        removed = gc_shards(shard_dir)
        assert torn.name in removed
        assert not torn.exists()
        assert _snapshot(shard_dir) == (gen0, rows0, logical0)

    def test_os_replace_failure_is_pre_commit(self, shard_dir,
                                              monkeypatch):
        """Even the rename syscall itself dying (disk yanked between
        the temp write and the commit) leaves the old generation."""
        gen0, rows0, logical0 = _snapshot(shard_dir)

        def torn_replace(src, dst):
            raise OSError("injected: disk vanished during rename")

        monkeypatch.setattr(sharded, "_os_replace", torn_replace)
        with pytest.raises(OSError, match="disk vanished"):
            compact(shard_dir)
        monkeypatch.undo()
        assert _snapshot(shard_dir) == (gen0, rows0, logical0)
        result = compact(shard_dir)
        assert result.compacted
        assert _snapshot(shard_dir)[0] == gen0 + 1


class TestCrashDuringAppend:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_every_point_recovers_exactly(self, shard_dir, parts,
                                          point):
        gen0, rows0, _logical0 = _snapshot(shard_dir)
        with FaultInjector(crash_at=point), \
                pytest.raises(InjectedCrash):
            append_shard(shard_dir, parts[3], target_chunk_rows=64)
        generation, rows, _ = _snapshot(shard_dir)
        if point == "manifest_published":
            assert generation == gen0 + 1
            assert rows == sorted(rows0 + parts[3].to_rows())
        else:
            assert generation == gen0 and rows == rows0
        _assert_no_partial_state(shard_dir)

    def test_lost_append_retries_after_gc(self, shard_dir, parts):
        """A crash after the shard write leaves an orphan file holding
        the next shard name; GC frees the name and the retry lands."""
        gen0, rows0, _ = _snapshot(shard_dir)
        with FaultInjector(crash_at="manifest_replace"), \
                pytest.raises(InjectedCrash):
            append_shard(shard_dir, parts[3], target_chunk_rows=64)
        # The orphan blocks a blind retry (exclusive create)...
        with pytest.raises(StorageError, match="already exists"):
            append_shard(shard_dir, parts[3], target_chunk_rows=64)
        # ...until the GC reaps it (it is in no manifest, pinned by
        # no reader).
        assert gc_shards(shard_dir)
        append_shard(shard_dir, parts[3], target_chunk_rows=64)
        generation, rows, _ = _snapshot(shard_dir)
        assert generation == gen0 + 1
        assert rows == sorted(rows0 + parts[3].to_rows())


class TestRandomizedInterleavings:
    """Random append/compact/query interleavings: the sharded table
    must stay digest-identical to the never-compacted truth at every
    step, on every backend."""

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_digest_parity_across_seeds(self, tmp_path, seed):
        rng = random.Random(seed)
        full = generate(GameConfig(n_users=18, seed=seed))
        batches = _user_batches(full, 6)
        d = tmp_path / "G"
        accumulated = None
        pending = list(batches)
        append_shard(d, pending.pop(0), target_chunk_rows=64)
        accumulated = batches[0]
        while pending:
            op = rng.choice(("append", "compact", "compact_small"))
            if op == "append":
                batch = pending.pop(0)
                append_shard(d, batch, target_chunk_rows=64)
                accumulated = accumulated.concat(batch)
            elif op == "compact":
                compact(d)
            else:
                compact(d, small_rows=rng.choice((8, 32, 128)))
            table = load_sharded(d)
            try:
                assert sorted(table.decompress().to_rows()) \
                    == sorted(accumulated.to_rows())
                # The manifest's logical digests must agree with the
                # rows actually on disk (self-validating snapshots).
                assert combine_logical(
                    e["logical_digest"]
                    for e in table.manifest["shards"]) \
                    == logical_digest_of(accumulated)
            finally:
                table.release()

        # Final state: all three backends agree with a never-compacted
        # single-file table, COHORTSIZE / UserCount() included.
        single = tmp_path / "G.cohana"
        save(compress(accumulated.sorted_by_primary_key(),
                      target_chunk_rows=64), single)
        sharded_engine, single_engine = CohanaEngine(), CohanaEngine()
        sharded_engine.load_table("G", d)
        single_engine.load_table("G", single)
        expected = hashlib.sha256(
            repr(single_engine.query(QUERY).rows).encode()).hexdigest()
        for backend in ("serial", "threads", "processes"):
            got = hashlib.sha256(repr(
                sharded_engine.query(QUERY, backend=backend,
                                     jobs=2).rows).encode()).hexdigest()
            assert got == expected, f"backend {backend} diverged"


class TestConcurrentStress:
    def test_reader_appender_compactor_threads(self, tmp_path):
        """Readers load snapshots while an appender grows the table
        and a compactor keeps rewriting it. Every snapshot any reader
        observes must be one of the generations the appender actually
        produced — its combined logical digest must equal a prefix of
        the appended batches, never a mix, never a torn state."""
        full = generate(GameConfig(n_users=24, seed=23))
        batches = _user_batches(full, 8)
        d = tmp_path / "G"
        append_shard(d, batches[0], target_chunk_rows=64)

        prefix = batches[0]
        valid_logicals = {logical_digest_of(prefix)}
        for batch in batches[1:]:
            prefix = prefix.concat(batch)
            valid_logicals.add(logical_digest_of(prefix))

        errors = []
        done = threading.Event()

        def appender():
            try:
                for batch in batches[1:]:
                    append_shard(d, batch, target_chunk_rows=64)
            except Exception as exc:  # pragma: no cover - must not fire
                errors.append(("appender", exc))
            finally:
                done.set()

        def compactor():
            try:
                while not done.is_set():
                    compact(d)
            except Exception as exc:  # pragma: no cover - must not fire
                errors.append(("compactor", exc))

        def reader():
            try:
                while not done.is_set():
                    table = load_sharded(d)
                    try:
                        logical = combine_logical(
                            e["logical_digest"]
                            for e in table.manifest["shards"])
                        assert logical in valid_logicals, \
                            "reader saw a state no publish produced"
                        # Decompress through the pinned snapshot: its
                        # files must stay readable even if a compactor
                        # superseded them meanwhile.
                        assert logical_digest_of(
                            table.decompress()) == logical
                    finally:
                        table.release()
            except Exception as exc:  # pragma: no cover - must not fire
                errors.append(("reader", exc))

        threads = [threading.Thread(target=appender)]
        threads += [threading.Thread(target=compactor)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        # Quiesced: one final compaction, the full dataset, parity.
        compact(d)
        table = load_sharded(d)
        try:
            rows = sorted(table.decompress().to_rows())
        finally:
            table.release()
        assert rows == sorted(prefix.to_rows())
        gc_shards(d)
        manifest = read_manifest(d)
        on_disk = {p.name for p in d.glob("shard-*.cohana")}
        assert on_disk == {e["path"] for e in manifest["shards"]}
        assert not (d / (MANIFEST_NAME + ".tmp")).exists()
