"""Unit tests for the SQL subset parser and binder."""

import pytest

from repro.errors import BindError, ParseError
from repro.relational import (
    Aggregate,
    ColumnRef,
    Filter,
    FuncCall,
    Join,
    Limit,
    Project,
    Scan,
    Sort,
    SubqueryScan,
)
from repro.sqlparser import SqlBinder, parse_sql
from repro.sqlparser.ast import StarItem, SubqueryRef, TableRef

CATALOG = {
    "D": ["p", "t", "a", "c", "role", "gold"],
    "MV": ["p", "t", "a", "c", "gold", "bc", "br", "bt", "age"],
}


def bind(sql):
    return SqlBinder(lambda name: CATALOG.get(name)).bind(parse_sql(sql))


class TestParser:
    def test_simple_select(self):
        q = parse_sql("SELECT p, gold FROM D")
        assert len(q.select.items) == 2
        assert q.select.items[0].expr == ColumnRef("p")
        assert isinstance(q.select.from_tables[0], TableRef)

    def test_star(self):
        q = parse_sql("SELECT * FROM D")
        assert isinstance(q.select.items[0], StarItem)

    def test_aliases(self):
        q = parse_sql("SELECT p AS player, gold g FROM D t1")
        assert q.select.items[0].alias == "player"
        assert q.select.items[1].alias == "g"
        assert q.select.from_tables[0].alias == "t1"

    def test_where_precedence(self):
        q = parse_sql("SELECT p FROM D WHERE a = 'x' OR a = 'y' AND gold > 3")
        where = q.select.where
        assert where.op == "OR"  # AND binds tighter

    def test_between_and_in(self):
        q = parse_sql("SELECT p FROM D WHERE t BETWEEN 1 AND 5 "
                      "AND c IN ('AU', 'CN')")
        assert q.select.where.op == "AND"

    def test_comma_join_and_join_on(self):
        q = parse_sql("SELECT D.p FROM D, MV JOIN D d2 ON d2.p = D.p")
        assert len(q.select.from_tables) == 2
        assert len(q.select.joins) == 1

    def test_group_by_with_alias(self):
        # the paper's idiom: GROUP BY Week(time) as week
        q = parse_sql("SELECT week, Avg(gold) FROM D "
                      "GROUP BY Week(t) AS week")
        assert q.select.group_by[0].alias == "week"
        assert isinstance(q.select.group_by[0].expr, FuncCall)

    def test_order_limit_distinct(self):
        q = parse_sql("SELECT DISTINCT p FROM D ORDER BY p DESC, gold "
                      "LIMIT 3")
        assert q.select.distinct
        assert q.select.order_by[0].ascending is False
        assert q.select.order_by[1].ascending is True
        assert q.select.limit == 3

    def test_with_clause(self):
        q = parse_sql("WITH x AS (SELECT p FROM D), "
                      "y AS (SELECT p FROM x) SELECT p FROM y")
        assert [c.name for c in q.ctes] == ["x", "y"]

    def test_subquery_in_from(self):
        q = parse_sql("SELECT s.p FROM (SELECT p FROM D) s")
        assert isinstance(q.select.from_tables[0], SubqueryRef)

    def test_count_star_and_distinct(self):
        q = parse_sql("SELECT Count(*), Count(DISTINCT p) FROM D")
        first, second = (i.expr for i in q.select.items)
        assert first.name == "COUNT" and not first.distinct
        assert second.distinct

    def test_arithmetic_precedence(self):
        q = parse_sql("SELECT gold + 2 * 3 FROM D")
        expr = q.select.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_qualified_column(self):
        q = parse_sql("SELECT D.gold FROM D")
        assert q.select.items[0].expr == ColumnRef("D.gold")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_sql("SELECT p FROM D extra garbage here(")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT p")

    def test_bad_limit(self):
        with pytest.raises(ParseError, match="LIMIT"):
            parse_sql("SELECT p FROM D LIMIT x")


class TestBinder:
    def test_scan_project(self):
        plan = bind("SELECT p, gold FROM D")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Scan)
        assert plan.output_names() == ["p", "gold"]

    def test_star_expansion(self):
        plan = bind("SELECT * FROM D")
        assert plan.output_names() == CATALOG["D"]

    def test_filter(self):
        plan = bind("SELECT p FROM D WHERE gold > 3")
        assert isinstance(plan.child, Filter)

    def test_join_shape(self):
        plan = bind("SELECT D.p FROM D, MV WHERE D.p = MV.p")
        filt = plan.child
        assert isinstance(filt, Filter)
        assert isinstance(filt.child, Join)

    def test_aggregate_plan(self):
        plan = bind("SELECT c, Sum(gold) AS total FROM D GROUP BY c")
        assert isinstance(plan, Project)
        agg = plan.child
        assert isinstance(agg, Aggregate)
        assert agg.group_names == ["c"]
        assert agg.agg_calls[0].name == "SUM"
        assert plan.output_names() == ["c", "total"]

    def test_group_alias_referenced_in_select(self):
        plan = bind("SELECT week, Avg(gold) FROM D GROUP BY Week(t) AS week")
        assert plan.output_names()[0] == "week"

    def test_ungrouped_column_rejected(self):
        with pytest.raises(BindError, match="GROUP BY"):
            bind("SELECT role, Sum(gold) FROM D GROUP BY c")

    def test_star_with_aggregate_rejected(self):
        with pytest.raises(BindError, match="[Aa]ggregat"):
            bind("SELECT *, Sum(gold) FROM D GROUP BY c")

    def test_unknown_table(self):
        with pytest.raises(BindError, match="unknown table"):
            bind("SELECT p FROM nope")

    def test_cte_visibility(self):
        plan = bind("WITH x AS (SELECT p, gold FROM D) "
                    "SELECT p FROM x WHERE gold > 1")
        assert isinstance(plan, Project)
        assert "SubqueryScan" in plan.describe()

    def test_duplicate_cte(self):
        with pytest.raises(BindError, match="duplicate"):
            bind("WITH x AS (SELECT p FROM D), x AS (SELECT p FROM D) "
                 "SELECT p FROM x")

    def test_order_and_limit_nodes(self):
        plan = bind("SELECT p FROM D ORDER BY p LIMIT 2")
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, Sort)

    def test_shared_aggregate_slots(self):
        plan = bind("SELECT Sum(gold), Sum(gold) FROM D GROUP BY c")
        agg = plan.child
        assert len(agg.agg_calls) == 1  # deduplicated

    def test_describe_tree(self):
        text = bind("SELECT c, Sum(gold) FROM D GROUP BY c").describe()
        assert "Aggregate" in text
        assert "Scan(D)" in text
