"""Tests for mixed cohort + SQL statements (Section 3.5)."""

import pytest

from repro.errors import BindError, ParseError
from repro.mixed import MixedEngine, is_cohort_query, split_mixed


MIXED = """
WITH cohorts AS (
    SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
    FROM D
    BIRTH FROM action = "launch"
    AGE ACTIVITIES IN action = "shop"
    COHORT BY country
)
SELECT country, age, spent FROM cohorts
WHERE country IN ('Australia', 'China')
ORDER BY country, age
"""


@pytest.fixture
def engine(table1):
    eng = MixedEngine()
    eng.create_table("D", table1, target_chunk_rows=4)
    return eng


class TestSplitter:
    def test_detects_cohort_query(self):
        assert is_cohort_query('SELECT c FROM D BIRTH FROM action = "x" '
                               'COHORT BY c')
        assert not is_cohort_query("SELECT c FROM D")

    def test_split_shapes(self):
        stmt = split_mixed(MIXED)
        assert list(stmt.cohort_subqueries) == ["cohorts"]
        assert "BIRTH FROM" in stmt.cohort_subqueries["cohorts"]
        assert stmt.sql_text.startswith("SELECT country")
        assert "BIRTH" not in stmt.sql_text

    def test_plain_sql_passthrough(self):
        stmt = split_mixed("SELECT player FROM D")
        assert stmt.cohort_subqueries == {}
        assert stmt.sql_text == "SELECT player FROM D"

    def test_sql_cte_preserved(self):
        stmt = split_mixed(
            "WITH x AS (SELECT player FROM D), c AS ("
            'SELECT country, Sum(gold) FROM D BIRTH FROM action = "a" '
            "COHORT BY country) SELECT * FROM x")
        assert list(stmt.cohort_subqueries) == ["c"]
        assert stmt.sql_text.startswith("WITH x AS (SELECT player FROM D)")

    def test_outer_cohort_query_rejected(self):
        with pytest.raises(ParseError, match="outermost"):
            split_mixed('SELECT c, Sum(g) FROM D BIRTH FROM action = "x" '
                        "COHORT BY c")

    def test_outer_cohort_after_with_rejected(self):
        with pytest.raises(ParseError, match="outermost"):
            split_mixed(
                "WITH x AS (SELECT player FROM D) "
                'SELECT c, Sum(g) FROM D BIRTH FROM action = "x" '
                "COHORT BY c")

    def test_duplicate_with_name(self):
        with pytest.raises(ParseError, match="duplicate"):
            split_mixed("WITH x AS (SELECT p FROM D), x AS "
                        "(SELECT p FROM D) SELECT * FROM x")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError, match="unbalanced"):
            split_mixed("WITH x AS (SELECT p FROM D SELECT * FROM x")

    def test_missing_outer(self):
        with pytest.raises(ParseError, match="outer"):
            split_mixed("WITH x AS (SELECT p FROM D)")

    def test_nested_parens_in_body(self):
        stmt = split_mixed(
            "WITH x AS (SELECT p FROM D WHERE (gold > 1 AND (gold < 9))) "
            "SELECT * FROM x")
        assert "(gold < 9)" in stmt.sql_text


class TestMixedEngine:
    def test_paper_example(self, engine):
        out = engine.execute(MIXED)
        assert out.names == ["country", "age", "spent"]
        countries = set(out.column("country"))
        assert countries <= {"Australia", "China"}
        # Player 001 (Australia) shops at ages 1..3; China never shops.
        assert [r for r in out.rows if r[0] == "Australia"] == [
            ("Australia", 1, 50), ("Australia", 2, 100),
            ("Australia", 3, 50)]

    def test_sql_aggregation_over_cohorts(self, engine):
        out = engine.execute("""
            WITH cohorts AS (
                SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
                FROM D BIRTH FROM action = "launch"
                AGE ACTIVITIES IN action = "shop"
                COHORT BY country
            )
            SELECT country, Sum(spent) AS total FROM cohorts
            GROUP BY country ORDER BY total DESC
        """)
        assert out.rows[0] == ("Australia", 200)

    def test_two_cohort_subqueries(self, engine):
        out = engine.execute("""
            WITH launch_c AS (
                SELECT country, COHORTSIZE, AGE, UserCount()
                FROM D BIRTH FROM action = "launch" COHORT BY country
            ),
            shop_c AS (
                SELECT country, COHORTSIZE, AGE, UserCount()
                FROM D BIRTH FROM action = "shop" COHORT BY country
            )
            SELECT a.country, b.country FROM launch_c a, shop_c b
            WHERE a.country = b.country
        """)
        assert len(out) >= 1

    def test_plain_sql_still_works(self, engine):
        out = engine.execute("SELECT Count(*) AS n FROM D")
        assert out.rows == [(10,)]

    def test_cohort_subquery_reading_subquery_rejected(self, engine):
        with pytest.raises(BindError, match="base activity table"):
            engine.execute("""
                WITH a AS (
                    SELECT country, Sum(gold) FROM D
                    BIRTH FROM action = "launch" COHORT BY country
                ),
                b AS (
                    SELECT country, Sum(gold) FROM a
                    BIRTH FROM action = "shop" COHORT BY country
                )
                SELECT * FROM b
            """)

    def test_cohort_subquery_unknown_table(self, engine):
        with pytest.raises(BindError, match="unknown activity table"):
            engine.execute("""
                WITH a AS (
                    SELECT country, Sum(gold) FROM Nope
                    BIRTH FROM action = "launch" COHORT BY country
                )
                SELECT * FROM a
            """)

    def test_rows_executor_variant(self, table1):
        eng = MixedEngine(executor="rows", cohana_executor="iterator")
        eng.create_table("D", table1)
        out = eng.execute(MIXED)
        assert len(out) == 3

    def test_tables_listing(self, engine):
        assert engine.tables() == ["D"]
