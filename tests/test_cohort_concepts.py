"""Unit tests for Definitions 1-3: birth time, birth tuple, age."""


from repro.cohort import (
    NEVER_BORN,
    bin_time,
    birth_times,
    birth_tuples,
    normalize_age,
)
from repro.schema import parse_timestamp


class TestBirthTimes:
    def test_launch_births(self, table1):
        births = birth_times(table1, "launch")
        assert births["001"] == parse_timestamp("2013/05/19:1000")
        assert births["002"] == parse_timestamp("2013/05/20:0900")
        assert births["003"] == parse_timestamp("2013/05/20:1000")

    def test_shop_births(self, table1):
        births = birth_times(table1, "shop")
        assert births["001"] == parse_timestamp("2013/05/20:0800")
        assert births["002"] == parse_timestamp("2013/05/21:1500")
        # player 003 never shops
        assert births["003"] == NEVER_BORN

    def test_unknown_action(self, table1):
        births = birth_times(table1, "no_such_action")
        assert all(t == NEVER_BORN for t in births.values())

    def test_minimum_time_wins(self, game_schema):
        from repro.table import ActivityTable
        rows = [("u", "2013-05-21", "shop", "d", "C", 1),
                ("u", "2013-05-19", "shop", "d", "C", 2)]
        table = ActivityTable.from_rows(game_schema, rows)
        assert birth_times(table, "shop")["u"] == \
            parse_timestamp("2013-05-19")


class TestBirthTuples:
    def test_t1_is_birth_tuple_of_001(self, table1):
        tuples = birth_tuples(table1, "launch")
        assert tuples["001"]["action"] == "launch"
        assert tuples["001"]["time"] == parse_timestamp("2013/05/19:1000")
        assert tuples["001"]["role"] == "dwarf"
        assert tuples["001"]["country"] == "Australia"

    def test_never_born_user_has_no_tuple(self, table1):
        tuples = birth_tuples(table1, "shop")
        assert "003" not in tuples
        assert set(tuples) == {"001", "002"}

    def test_birth_tuple_role_captured_at_birth(self, table1):
        # Player 001 shops as dwarf at birth (t2), later as assassin.
        tuples = birth_tuples(table1, "shop")
        assert tuples["001"]["role"] == "dwarf"


class TestNormalizeAge:
    def test_birth_instant_is_zero(self):
        assert normalize_age(0) == 0

    def test_paper_example_t2_age_one_day(self):
        # t2 is 22 hours after birth => age 1 (the paper's Section 3.2).
        raw = parse_timestamp("2013/05/20:0800") - parse_timestamp(
            "2013/05/19:1000")
        assert normalize_age(raw, "day") == 1

    def test_paper_example_t2_week_one(self):
        raw = parse_timestamp("2013/05/20:0800") - parse_timestamp(
            "2013/05/19:1000")
        assert normalize_age(raw, "week") == 1

    def test_exact_unit_boundary(self):
        assert normalize_age(86400, "day") == 1
        assert normalize_age(86401, "day") == 2

    def test_negative_age_stays_negative(self):
        assert normalize_age(-10, "day") == -1
        assert normalize_age(-86401, "day") == -2

    def test_week_unit(self):
        assert normalize_age(8 * 86400, "week") == 2


class TestBinTime:
    def test_epoch_aligned(self):
        assert bin_time(10, "day") == 0
        assert bin_time(86400 + 5, "day") == 86400

    def test_origin_aligned_weeks(self):
        origin = parse_timestamp("2013-05-19")
        t = parse_timestamp("2013-05-27")  # second week
        assert bin_time(t, "week", origin) == parse_timestamp("2013-05-26")
        t0 = parse_timestamp("2013-05-19 23:00")
        assert bin_time(t0, "week", origin) == origin

    def test_before_origin(self):
        origin = parse_timestamp("2013-05-19")
        t = parse_timestamp("2013-05-18")
        assert bin_time(t, "week", origin) == parse_timestamp("2013-05-12")
