"""Unit tests for CohortResult/CohortReport and the aggregate machinery."""

import pytest

from repro.errors import QueryError
from repro.cohort import AggregateSpec, CohortResult, make_accumulator
from repro.cohort.result import EMPTY_CELL
from repro.cohort.aggregates import UserCountAccumulator
from repro.cohana.aggregate import (
    ArrayAggregateTable,
    CohortCodec,
    CohortSizeTable,
)

ROWS = [
    ("AU", 3, 1, 50), ("AU", 3, 2, 100),
    ("CN", 5, 1, 10), ("CN", 5, 3, 30),
]


@pytest.fixture
def result():
    return CohortResult(columns=["country", "cohort_size", "age", "m"],
                        rows=list(ROWS), n_cohort_columns=1)


class TestCohortResult:
    def test_len_iter(self, result):
        assert len(result) == 4
        assert list(result)[0] == ("AU", 3, 1, 50)

    def test_column_access(self, result):
        assert result.column_values("age") == [1, 2, 1, 3]
        with pytest.raises(QueryError):
            result.column_index("nope")

    def test_bad_row_width(self):
        with pytest.raises(QueryError):
            CohortResult(columns=["a", "b"], rows=[(1,)])

    def test_sorted(self):
        shuffled = CohortResult(
            columns=["country", "cohort_size", "age", "m"],
            rows=[ROWS[3], ROWS[0], ROWS[2], ROWS[1]])
        assert shuffled.sorted().rows == ROWS

    def test_as_dicts(self, result):
        d = result.as_dicts()[0]
        assert d == {"country": "AU", "cohort_size": 3, "age": 1,
                     "m": 50}

    def test_to_text(self, result):
        text = result.to_text(max_rows=2)
        assert "country" in text
        assert "more rows" in text


class TestPivot:
    def test_matrix(self, result):
        report = result.pivot("m")
        assert report.cohort_labels == ["AU", "CN"]
        assert report.cohort_sizes == [3, 5]
        assert report.ages == [1, 2, 3]
        assert report.cell("AU", 1) == 50
        assert report.cell("AU", 3) is None
        assert report.cell("CN", 3) == 30
        assert report.cell("Narnia", 1) is None

    def test_default_measure(self, result):
        assert result.pivot().measure == "m"

    def test_to_text_contains_sizes(self, result):
        text = result.pivot("m").to_text()
        assert "AU (3)" in text and "CN (5)" in text

    def test_multi_attribute_labels(self):
        result = CohortResult(
            columns=["country", "role", "cohort_size", "age", "m"],
            rows=[("AU", "dwarf", 2, 1, 9)], n_cohort_columns=2)
        report = result.pivot("m")
        assert report.cohort_labels == ["AU / dwarf"]


class TestEmptyCellRendering:
    """None cells — missing (cohort, age) buckets, or AVG/MIN/MAX over
    zero tuples — render as the EMPTY_CELL marker, never blank or
    'None'."""

    def test_marker_is_exported(self):
        from repro.cohort import EMPTY_CELL as exported
        assert exported == EMPTY_CELL

    def test_pivot_holes_use_marker(self, result):
        # AU has no age-3 bucket and CN no age-2 bucket.
        lines = result.pivot("m").to_text().splitlines()
        au = next(ln for ln in lines if ln.startswith("AU"))
        cn = next(ln for ln in lines if ln.startswith("CN"))
        assert au.split("|")[1].split() == ["50", "100", EMPTY_CELL]
        assert cn.split("|")[1].split() == ["10", EMPTY_CELL, "30"]
        assert "None" not in au and "None" not in cn

    def test_relation_none_measure_uses_marker(self):
        rel = CohortResult(
            columns=["country", "cohort_size", "age", "avg_gold"],
            rows=[("AU", 3, 1, None)])
        line = rel.to_text().splitlines()[-1]
        assert EMPTY_CELL in line.split()
        assert "None" not in line


class TestAccumulators:
    @pytest.mark.parametrize("func,values,expected", [
        ("SUM", [1, 2, 3], 6),
        ("COUNT", [1, 2, 3], 3),
        ("AVG", [1, 2, 3], 2.0),
        ("MIN", [3, 1, 2], 1),
        ("MAX", [3, 1, 2], 3),
    ])
    def test_basic(self, func, values, expected):
        acc = make_accumulator(func)
        for v in values:
            acc.add(v, "u")
        assert acc.result() == expected

    def test_avg_empty_is_none(self):
        assert make_accumulator("AVG").result() is None

    def test_min_max_empty_is_none(self):
        assert make_accumulator("MIN").result() is None
        assert make_accumulator("MAX").result() is None

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            make_accumulator("MEDIAN")

    @pytest.mark.parametrize("func", ["SUM", "COUNT", "AVG", "MIN",
                                      "MAX"])
    def test_merge_equals_combined(self, func):
        a = make_accumulator(func)
        b = make_accumulator(func)
        combined = make_accumulator(func)
        for v in (5, 1):
            a.add(v, "u1")
            combined.add(v, "u1")
        for v in (9, 2):
            b.add(v, "u2")
            combined.add(v, "u2")
        a.merge(b)
        assert a.result() == combined.result()

    def test_usercount_distinct_within_chunk(self):
        acc = UserCountAccumulator()
        for user in ("a", "a", "b"):
            acc.add(None, user)
        assert acc.result() == 2

    def test_usercount_merge_adds_disjoint_counts(self):
        # merge() relies on the chunking invariant: disjoint users
        a = UserCountAccumulator()
        a.add(None, "a")
        b = UserCountAccumulator()
        b.add(None, "b")
        b.add(None, "c")
        a.merge(b)
        assert a.result() == 3


class TestArrayTables:
    SPECS = (AggregateSpec("SUM", "gold", "s"),
             AggregateSpec("USERCOUNT", None, "u"))

    def test_codec(self):
        codec = CohortCodec()
        assert codec.code(("AU",)) == 0
        assert codec.code(("CN",)) == 1
        assert codec.code(("AU",)) == 0
        assert codec.label(1) == ("CN",)
        assert len(codec) == 2
        assert codec.labels() == [("AU",), ("CN",)]

    def test_update_and_buckets(self):
        table = ArrayAggregateTable(self.SPECS)
        table.update(0, 1, {"gold": 5}, "u1")
        table.update(0, 1, {"gold": 7}, "u2")
        table.update(2, 3, {"gold": 1}, "u3")
        buckets = {(c, a): [acc.result() for acc in cell]
                   for c, a, cell in table.buckets()}
        assert buckets[(0, 1)] == [12, 2]
        assert buckets[(2, 3)] == [1, 1]

    def test_merge(self):
        a = ArrayAggregateTable(self.SPECS)
        a.update(0, 1, {"gold": 5}, "u1")
        b = ArrayAggregateTable(self.SPECS)
        b.update(0, 1, {"gold": 3}, "u9")
        b.update(1, 2, {"gold": 8}, "u2")
        a.merge(b)
        buckets = {(c, g): [acc.result() for acc in cell]
                   for c, g, cell in a.buckets()}
        assert buckets[(0, 1)] == [8, 2]
        assert buckets[(1, 2)] == [8, 1]

    def test_size_table(self):
        sizes = CohortSizeTable()
        sizes.increment(3)
        sizes.increment(3)
        assert sizes.count(3) == 2
        assert sizes.count(0) == 0
        assert sizes.count(99) == 0
