"""Tests for the row and columnar relational engines.

Every behavioural test runs against both executors; a hypothesis
differential test checks they agree on random queries over random data.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError
from repro.relational import Database
from repro.schema import parse_timestamp
from repro.table import ActivityTable

from helpers import make_game_schema, make_table1


def make_db(executor: str) -> Database:
    db = Database(executor=executor)
    db.register_activity_table("D", make_table1())
    return db


@pytest.fixture(params=["rows", "columnar"])
def db(request) -> Database:
    return make_db(request.param)


class TestBasics:
    def test_select_all(self, db):
        out = db.execute("SELECT * FROM D")
        assert len(out) == 10
        assert out.names == ["player", "time", "action", "role",
                             "country", "gold"]

    def test_projection_and_alias(self, db):
        out = db.execute("SELECT player AS p, gold FROM D LIMIT 3")
        assert out.names == ["p", "gold"]
        assert len(out) == 3

    def test_filter(self, db):
        out = db.execute("SELECT player FROM D WHERE action = 'shop'")
        assert len(out) == 5

    def test_filter_numeric(self, db):
        out = db.execute("SELECT gold FROM D WHERE gold >= 50")
        assert sorted(out.column("gold")) == [50, 50, 100]

    def test_between(self, db):
        t1 = parse_timestamp("2013/05/20:0000")
        t2 = parse_timestamp("2013/05/21:0000")
        out = db.execute(
            f"SELECT player FROM D WHERE time BETWEEN {t1} AND {t2}")
        assert len(out) == 4

    def test_in_list(self, db):
        out = db.execute(
            "SELECT player FROM D WHERE country IN ('China', 'Australia')")
        assert len(out) == 7

    def test_and_or_not(self, db):
        out = db.execute(
            "SELECT player FROM D WHERE action = 'shop' AND "
            "(country = 'China' OR NOT gold < 40)")
        assert len(out) == 4

    def test_arithmetic(self, db):
        out = db.execute("SELECT gold * 2 + 1 AS v FROM D WHERE gold = 50 "
                         "LIMIT 1")
        assert out.rows == [(101,)]

    def test_distinct(self, db):
        out = db.execute("SELECT DISTINCT player FROM D")
        assert sorted(out.column("player")) == ["001", "002", "003"]

    def test_order_by_desc(self, db):
        out = db.execute("SELECT DISTINCT gold FROM D ORDER BY gold DESC")
        assert out.column("gold") == [100, 50, 40, 30, 0]

    def test_multi_key_order(self, db):
        out = db.execute(
            "SELECT player, gold FROM D ORDER BY player DESC, gold ASC "
            "LIMIT 3")
        assert out.rows[0][0] == "003"

    def test_empty_result(self, db):
        out = db.execute("SELECT player FROM D WHERE gold > 10000")
        assert len(out) == 0


class TestAggregation:
    def test_group_by_sum(self, db):
        out = db.execute(
            "SELECT country, Sum(gold) AS total FROM D GROUP BY country")
        totals = dict(out.rows)
        assert totals == {"Australia": 200, "United States": 70,
                          "China": 0}

    def test_count_star_and_distinct(self, db):
        out = db.execute(
            "SELECT Count(*) AS n, Count(DISTINCT player) AS u FROM D")
        assert out.rows == [(10, 3)]

    def test_avg_min_max(self, db):
        out = db.execute(
            "SELECT Avg(gold) AS a, Min(gold) AS lo, Max(gold) AS hi "
            "FROM D WHERE action = 'shop'")
        a, lo, hi = out.rows[0]
        assert (round(a, 2), lo, hi) == (54.0, 30, 100)

    def test_global_aggregate_on_empty_input(self, db):
        out = db.execute("SELECT Count(*) AS n FROM D WHERE gold > 10000")
        assert out.rows == [(0,)]

    def test_group_by_expression_alias(self, db):
        origin = parse_timestamp("2013-05-19")
        out = db.execute(
            f"SELECT week, Sum(gold) AS total FROM D "
            f"GROUP BY Week(time, {origin}) AS week")
        assert len(out) == 1  # all of Table 1 is within one week
        assert out.rows[0][1] == 270

    def test_aggregate_arithmetic(self, db):
        out = db.execute(
            "SELECT Sum(gold) / Count(*) AS per_event FROM D")
        assert out.rows[0][0] == 27.0

    def test_timediff(self, db):
        out = db.execute(
            "SELECT TimeDiff(Max(time), Min(time)) AS span FROM D")
        expected = (parse_timestamp("2013/05/22:1700")
                    - parse_timestamp("2013/05/19:1000"))
        assert out.rows[0][0] == expected


class TestJoins:
    def test_self_join_equi(self, db):
        out = db.execute(
            "SELECT a.player FROM D a, D b "
            "WHERE a.player = b.player AND a.time = b.time AND "
            "a.action = b.action")
        assert len(out) == 10  # primary key join matches each row once

    def test_join_with_residual(self, db):
        out = db.execute(
            "SELECT a.gold, b.gold FROM D a, D b "
            "WHERE a.player = b.player AND a.gold < b.gold")
        assert all(g1 < g2 for g1, g2 in out.rows)

    def test_join_on_syntax(self, db):
        out = db.execute(
            "SELECT a.player FROM D a JOIN D b ON a.player = b.player "
            "WHERE a.action = 'launch' AND b.action = 'launch'")
        assert len(out) == 3

    def test_cross_join(self, db):
        out = db.execute(
            "SELECT a.player FROM (SELECT DISTINCT player FROM D) a, "
            "(SELECT DISTINCT country FROM D) b")
        assert len(out) == 9

    def test_cte_join(self, db):
        out = db.execute("""
            WITH birth AS (
                SELECT player AS p, Min(time) AS bt FROM D
                WHERE action = 'launch' GROUP BY player
            )
            SELECT D.player, D.action FROM D, birth
            WHERE D.player = birth.p AND D.time = birth.bt
        """)
        assert sorted(out.column("action")) == ["launch"] * 3


class TestDatabase:
    def test_create_table_as(self, db):
        db.create_table_as("shops", "SELECT * FROM D WHERE action = 'shop'")
        assert len(db.table("shops")) == 5
        out = db.execute("SELECT Count(*) AS n FROM shops")
        assert out.rows == [(5,)]

    def test_duplicate_registration(self, db):
        with pytest.raises(CatalogError):
            db.register_activity_table("D", make_table1())

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.table("nope")

    def test_drop(self, db):
        db.drop("D")
        assert db.tables() == []

    def test_bad_executor(self):
        with pytest.raises(CatalogError):
            Database(executor="gpu")

    def test_explain(self, db):
        assert "Scan(D)" in db.explain("SELECT player FROM D")

    def test_to_text(self, db):
        text = db.execute("SELECT player, gold FROM D LIMIT 2").to_text()
        assert "player" in text and "gold" in text


# -- differential: rows vs columnar ------------------------------------------------

_QUERIES = [
    "SELECT player, gold FROM D WHERE gold > {x}",
    "SELECT country, Sum(gold) AS s, Count(*) AS n FROM D "
    "GROUP BY country",
    "SELECT role, Count(DISTINCT player) AS u FROM D GROUP BY role",
    "SELECT DISTINCT country FROM D ORDER BY country",
    "SELECT a.player, b.gold FROM D a, D b WHERE a.player = b.player "
    "AND a.gold > b.gold",
    "SELECT action, Min(gold) AS lo, Max(gold) AS hi, Avg(gold) AS m "
    "FROM D GROUP BY action",
    "SELECT player FROM D WHERE country IN ('China', 'Australia') "
    "AND gold <= {x}",
]

_users = st.integers(0, 6).map(lambda i: f"u{i}")
_actions = st.sampled_from(["launch", "shop", "fight"])


@st.composite
def random_activity(draw):
    n = draw(st.integers(1, 50))
    keys = set()
    for _ in range(n):
        keys.add((draw(_users), draw(st.integers(0, 10**6)),
                  draw(_actions)))
    rows = [(u, t, a, draw(st.sampled_from(["dwarf", "mage"])),
             draw(st.sampled_from(["AU", "CN", "US"])),
             draw(st.integers(0, 99))) for (u, t, a) in sorted(keys)]
    return ActivityTable.from_rows(make_game_schema(), rows)


@given(table=random_activity(),
       query_template=st.sampled_from(_QUERIES),
       x=st.integers(0, 99))
@settings(max_examples=80, deadline=None)
def test_property_row_and_columnar_agree(table, query_template, x):
    sql = query_template.format(x=x)
    results = []
    for executor in ("rows", "columnar"):
        db = Database(executor=executor)
        db.register_activity_table("D", table)
        out = db.execute(sql)
        results.append((out.names,
                        sorted(_round(r) for r in out.rows)))
    assert results[0] == results[1]


def _round(row):
    return tuple(round(v, 9) if isinstance(v, float) else v for v in row)
