"""The documentation stays true: links resolve and examples run.

Mirrors the CI docs job locally so a broken doc fails the tier-1 suite,
not just CI: ``tools/check_docs.py`` validates every relative Markdown
link, and ``docs/query-language.md`` runs through doctest (its examples
are the query-language reference's contract).
"""

import doctest
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_markdown_links_resolve():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    problems = []
    for path in check_docs.markdown_files([]):
        problems.extend(check_docs.check_file(path))
    assert problems == []


def test_query_language_examples_run():
    results = doctest.testfile(
        str(ROOT / "docs" / "query-language.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 10
    assert results.failed == 0


def test_readme_exists_with_required_sections():
    text = (ROOT / "README.md").read_text()
    for heading in ("## Install", "## Quickstart",
                    "## Map of the repository", "## Benchmarks"):
        assert heading in text
