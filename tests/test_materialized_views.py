"""Materialized cohort views: DDL, per-shard partials, incremental
refresh, persistence, service dispositions, and the merge invariants
they rest on.

Covers the PR-6 tentpole (``CREATE MATERIALIZED VIEW`` through parser,
engine catalog, per-shard partial store, service and CLI) plus the
satellite work: the randomized partial-merge == whole-table invariant
suite for every aggregate, the no-user-spans-a-chunk regression pin,
the decode memoization on storage objects, and the warm-partials-after-
byte-identical-reload bugfix.
"""

import json
import os
import random
from dataclasses import replace

import pytest

from repro.cli import main
from repro.cohana import CohanaEngine, parse_cohort_query
from repro.cohana.binder import bind_cohort_query
from repro.cohana.parser import (
    ParsedCohortQuery,
    ParsedCreateView,
    ParsedDropView,
    parse_statement,
)
from repro.cohana.pipeline import (
    ExecStats,
    MergeState,
    build_rows,
    shard_value_partial,
)
from repro.errors import CatalogError, ParseError
from repro.service import QueryService
from repro.service.fingerprint import view_fingerprint
from repro.storage import append_shard, compress, load
from repro.table import ActivityTable
from repro.views import decode_partial, encode_partial
from repro.views.store import DiskViewStore

from helpers import make_game_schema, make_table1

QUERY = ('SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent FROM G '
         'BIRTH FROM action = "launch" COHORT BY country')
DDL = "CREATE MATERIALIZED VIEW weekly AS " + QUERY

ACTIONS = ("launch", "shop", "fight", "idle")
ROLES = ("dwarf", "wizard", "bandit", "assassin")
COUNTRIES = ("Australia", "China", "Canada", "Peru")

#: SELECT fragments for every aggregate the merge must be exact for.
AGG_EXPRS = {
    "COUNT": "Count(*)",
    "SUM": "Sum(gold)",
    "AVG": "Avg(gold)",
    "MIN": "Min(gold)",
    "MAX": "Max(gold)",
    "USERCOUNT": "UserCount()",
}


def _random_table(seed: int, n_users: int = 24) -> ActivityTable:
    """A random activity table: every user gets 1-9 tuples at distinct
    timestamps with random actions/dimensions/gold."""
    rng = random.Random(seed)
    rows = []
    for u in range(n_users):
        player = f"u{u:03d}"
        role = rng.choice(ROLES)
        country = rng.choice(COUNTRIES)
        slots = rng.sample(range(28 * 4), rng.randint(1, 9))
        for slot in sorted(slots):
            day, hour = divmod(slot, 4)
            rows.append((player, f"2013/05/{day + 1:02d}:{hour:02d}15",
                         rng.choice(ACTIONS), role, country,
                         rng.randint(0, 90)))
    return ActivityTable.from_rows(make_game_schema(), rows)


def _user_batches(table: ActivityTable, n: int) -> list[ActivityTable]:
    """Contiguous user-disjoint slices of a sorted activity table."""
    table = table.sorted_by_primary_key()
    blocks = list(table.user_blocks())
    per = max(1, -(-len(blocks) // n))
    return [table.slice(blocks[i][1],
                        blocks[min(i + per, len(blocks)) - 1][2])
            for i in range(0, len(blocks), per)]


def _shard_engine(tmp_path, table: ActivityTable, n_batches: int = 3,
                  chunk_rows: int = 16) -> tuple[CohanaEngine, object]:
    """Ingest ``table`` as ``n_batches`` shards and load it as ``G``."""
    sdir = tmp_path / "G"
    for batch in _user_batches(table, n_batches):
        append_shard(sdir, batch, target_chunk_rows=chunk_rows)
    engine = CohanaEngine()
    engine.load_table("G", sdir)
    return engine, sdir


# ---------------------------------------------------------------------------
# Parser: the DDL statements
# ---------------------------------------------------------------------------


class TestParseStatement:
    def test_plain_query_passes_through(self):
        parsed = parse_statement(QUERY)
        assert isinstance(parsed, ParsedCohortQuery)
        assert parsed.table == "G"

    def test_create_view(self):
        parsed = parse_statement(DDL)
        assert isinstance(parsed, ParsedCreateView)
        assert parsed.name == "weekly"
        assert not parsed.or_replace
        assert parsed.query.table == "G"
        # The captured text is the query exactly as written after AS.
        assert parsed.query_text == QUERY

    def test_create_or_replace(self):
        parsed = parse_statement(
            "CREATE OR REPLACE MATERIALIZED VIEW w AS " + QUERY)
        assert isinstance(parsed, ParsedCreateView)
        assert parsed.or_replace

    def test_create_keeps_trailing_semicolonless_text(self):
        parsed = parse_statement(DDL + ";")
        assert parsed.query_text == QUERY

    def test_drop_view(self):
        parsed = parse_statement("DROP MATERIALIZED VIEW weekly")
        assert isinstance(parsed, ParsedDropView)
        assert parsed.name == "weekly"
        assert not parsed.if_exists

    def test_drop_if_exists(self):
        parsed = parse_statement(
            "DROP MATERIALIZED VIEW IF EXISTS weekly;")
        assert parsed.if_exists

    def test_drop_rejects_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_statement("DROP MATERIALIZED VIEW weekly extra")

    def test_create_requires_as(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE MATERIALIZED VIEW weekly " + QUERY)

    def test_create_body_must_parse(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE MATERIALIZED VIEW w AS SELECT")


class TestViewFingerprint:
    def test_table_name_free(self):
        bound = bind_cohort_query(parse_cohort_query(QUERY),
                                  make_game_schema())
        assert (view_fingerprint(replace(bound, table="A"))
                == view_fingerprint(replace(bound, table="B")))

    def test_distinguishes_queries(self):
        schema = make_game_schema()
        a = bind_cohort_query(parse_cohort_query(QUERY), schema)
        b = bind_cohort_query(
            parse_cohort_query(QUERY.replace("country", "role")), schema)
        assert view_fingerprint(a) != view_fingerprint(b)


# ---------------------------------------------------------------------------
# Randomized invariants: per-shard partial merge == whole-table run
# ---------------------------------------------------------------------------


class TestPartialMergeInvariant:
    @pytest.mark.parametrize("func", sorted(AGG_EXPRS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_view_serve_matches_whole_table(self, tmp_path, seed, func):
        """Shard + chunk boundaries must be invisible: serving a view
        from per-shard partials equals executing on one table holding
        all the data, for every aggregate."""
        table = _random_table(seed)
        text = (f'SELECT role, COHORTSIZE, AGE, {AGG_EXPRS[func]} '
                f'FROM G BIRTH FROM action = "launch" COHORT BY role')
        sharded, _ = _shard_engine(tmp_path, table)
        whole = CohanaEngine()
        whole.create_table("G", table)
        sharded.create_view("v", text)
        assert sharded.query_view("v").rows == whole.query(text).rows

    @pytest.mark.parametrize("seed", [4, 5])
    def test_fold_partials_directly(self, tmp_path, seed):
        """The pipeline-level contract behind views: folding
        shard_value_partial outputs through MergeState reproduces the
        sharded engine run bit for bit."""
        table = _random_table(seed)
        engine, _ = _shard_engine(tmp_path, table)
        text = (f'SELECT role, COHORTSIZE, AGE, {AGG_EXPRS["AVG"]}, '
                f'{AGG_EXPRS["USERCOUNT"]} FROM G '
                f'BIRTH FROM action = "shop" COHORT BY role')
        query = engine.parse(text)
        stable = engine.table("G")
        state = MergeState(query)
        stats = ExecStats()
        for shard in stable.shards:
            state.absorb(shard_value_partial(shard, query), stats)
        rows = build_rows(stable, state, decoded_labels=True)
        assert rows == engine.query(query).rows

    def test_partials_json_roundtrip(self, tmp_path):
        """Encoding a partial to JSON and back must be lossless,
        including AVG's (sum, count) running state."""
        table = _random_table(6)
        engine, _ = _shard_engine(tmp_path, table)
        query = engine.parse(
            'SELECT role, COHORTSIZE, AGE, Avg(gold), Count(*) FROM G '
            'BIRTH FROM action = "launch" COHORT BY role')
        shard = engine.table("G").shards[0]
        partial = shard_value_partial(shard, query)
        funcs = [agg.func for agg in query.aggregates]
        wire = json.loads(json.dumps(encode_partial(partial)))
        restored = decode_partial(wire, funcs)
        assert restored.cohort_sizes == partial.cohort_sizes
        assert restored.buckets == partial.buckets


class TestChunkInvariantRegression:
    def test_no_user_spans_a_chunk(self):
        """The writer invariant the whole partial algebra rests on:
        chunks close at user boundaries, so each user's global id
        appears in exactly one chunk even when a user's run is larger
        than the chunk target."""
        table = _random_table(7, n_users=40)
        compressed = compress(table, target_chunk_rows=4)
        assert compressed.n_chunks > 1
        seen = set()
        for chunk in compressed.chunks:
            ids = set(chunk.users.arrays()[0].tolist())
            assert seen.isdisjoint(ids), "user split across chunks"
            seen |= ids


# ---------------------------------------------------------------------------
# Decode memoization on storage objects (satellite 1)
# ---------------------------------------------------------------------------


class TestDecodeMemoization:
    def test_rle_arrays_cached(self):
        chunk = compress(make_table1(), target_chunk_rows=4).chunks[0]
        first = chunk.users.arrays()
        again = chunk.users.arrays()
        assert all(a is b for a, b in zip(first, again))

    def test_dict_global_ids_cached(self):
        chunk = compress(make_table1(), target_chunk_rows=4).chunks[0]
        col = chunk.columns["action"]
        assert col.global_ids() is col.global_ids()

    def test_cached_decode_is_correct(self, tmp_path):
        """Memoization must not change results across repeated runs of
        the same engine (second run reuses every cached array)."""
        engine = CohanaEngine()
        engine.create_table("G", make_table1())
        first = engine.query(QUERY)
        assert engine.query(QUERY).rows == first.rows


# ---------------------------------------------------------------------------
# Engine lifecycle: create / serve / append / reload / drop
# ---------------------------------------------------------------------------


class TestEngineViews:
    def test_create_serve_parity_and_persistence(self, tmp_path):
        engine, sdir = _shard_engine(tmp_path, _random_table(8))
        view = engine.execute_statement(DDL)
        assert view.name == "weekly"
        assert engine.views() == ["weekly"]
        result, stats = engine.serve_view("weekly")
        assert stats.shards_scanned == 0  # create refreshed already
        assert result.rows == engine.query(QUERY).rows
        assert (sdir / "VIEWS" / "weekly.view.json").is_file()
        partials = list((sdir / "VIEWS" / "partials").rglob("*.json"))
        assert len(partials) == stats.shards_total

    def test_append_refreshes_only_new_shard(self, tmp_path):
        table = _random_table(9, n_users=30)
        batches = _user_batches(table, 3)
        sdir = tmp_path / "G"
        for batch in batches[:2]:
            append_shard(sdir, batch, target_chunk_rows=16)
        engine = CohanaEngine()
        engine.load_table("G", sdir)
        engine.execute_statement(DDL)

        append_shard(sdir, batches[2], target_chunk_rows=16)
        engine.refresh_table("G", refresh_views=False)
        stats = engine.refresh_view("weekly")
        assert stats.shards_total == 3
        assert stats.shards_scanned == 1
        result, serve_stats = engine.serve_view("weekly")
        assert serve_stats.shards_scanned == 0
        assert result.rows == engine.query(QUERY).rows

    def test_refresh_table_refreshes_views_by_default(self, tmp_path):
        table = _random_table(10, n_users=30)
        batches = _user_batches(table, 2)
        sdir = tmp_path / "G"
        append_shard(sdir, batches[0], target_chunk_rows=16)
        engine = CohanaEngine()
        engine.load_table("G", sdir)
        engine.execute_statement(DDL)
        append_shard(sdir, batches[1], target_chunk_rows=16)
        engine.refresh_table("G")
        _, stats = engine.serve_view("weekly")
        assert stats.shards_scanned == 0  # refresh_table did the scan

    def test_byte_identical_reload_keeps_partials_warm(self, tmp_path):
        """The satellite bugfix pin: partials are keyed by shard
        content digest, so reloading unchanged bytes — same process or
        a fresh one — must not recompute anything."""
        engine, sdir = _shard_engine(tmp_path, _random_table(11))
        engine.execute_statement(DDL)
        engine.refresh_table("G")  # same bytes, new snapshot
        _, stats = engine.serve_view("weekly")
        assert stats.shards_scanned == 0

        fresh = CohanaEngine()
        fresh.load_table("G", sdir)  # restart: definitions re-attach
        assert fresh.views() == ["weekly"]
        result, stats = fresh.serve_view("weekly")
        assert stats.shards_scanned == 0
        assert result.rows == engine.query(QUERY).rows

    def test_corrupt_partial_degrades_to_recompute(self, tmp_path):
        engine, sdir = _shard_engine(tmp_path, _random_table(12))
        engine.execute_statement(DDL)
        direct = engine.query(QUERY)
        victim = next((sdir / "VIEWS" / "partials").rglob("*.json"))
        victim.write_text("{not json", encoding="utf-8")
        result, stats = engine.serve_view("weekly")
        assert stats.shards_scanned == 1  # only the damaged shard
        assert result.rows == direct.rows

    def test_drop_view_removes_files(self, tmp_path):
        engine, sdir = _shard_engine(tmp_path, _random_table(13))
        engine.execute_statement(DDL)
        assert engine.drop_view("weekly")
        assert engine.views() == []
        assert not (sdir / "VIEWS").exists()

    def test_drop_table_drops_views_and_files(self, tmp_path):
        engine, sdir = _shard_engine(tmp_path, _random_table(14))
        engine.execute_statement(DDL)
        engine.drop_table("G")
        assert engine.views() == []
        assert not (sdir / "VIEWS").exists()
        with pytest.raises(CatalogError):
            engine.view("weekly")

    def test_create_duplicate_requires_or_replace(self, tmp_path):
        engine, _ = _shard_engine(tmp_path, _random_table(15))
        engine.execute_statement(DDL)
        with pytest.raises(CatalogError):
            engine.execute_statement(DDL)
        other = ("CREATE OR REPLACE MATERIALIZED VIEW weekly AS "
                 + QUERY.replace("country", "role"))
        view = engine.execute_statement(other)
        assert view.query.cohort_by == ("role",) \
            or list(view.query.cohort_by) == ["role"]
        assert engine.views() == ["weekly"]

    def test_or_replace_drops_stale_partials(self, tmp_path):
        engine, sdir = _shard_engine(tmp_path, _random_table(16))
        engine.execute_statement(DDL)
        old_fp = engine.view("weekly").fingerprint
        engine.execute_statement(
            "CREATE OR REPLACE MATERIALIZED VIEW weekly AS "
            + QUERY.replace("country", "role"))
        new_fp = engine.view("weekly").fingerprint
        assert new_fp != old_fp
        store = DiskViewStore(sdir / "VIEWS")
        assert store.partial_digests(old_fp) == set()
        assert store.partial_digests(new_fp)

    def test_drop_if_exists(self, tmp_path):
        engine, _ = _shard_engine(tmp_path, _random_table(17))
        assert engine.execute_statement(
            "DROP MATERIALIZED VIEW IF EXISTS nope") is False
        with pytest.raises(CatalogError):
            engine.execute_statement("DROP MATERIALIZED VIEW nope")

    def test_views_over_in_memory_tables(self):
        engine = CohanaEngine()
        engine.create_table("G", make_table1())
        engine.create_view("v", QUERY)
        assert engine.query_view("v").rows == engine.query(QUERY).rows

    def test_view_rejects_unknown_table(self):
        engine = CohanaEngine()
        with pytest.raises(CatalogError):
            engine.create_view("v", QUERY)

    def test_invalid_view_name(self, tmp_path):
        engine, _ = _shard_engine(tmp_path, _random_table(18))
        with pytest.raises(CatalogError):
            engine.create_view("not a name", QUERY)

    def test_view_status(self, tmp_path):
        engine, _ = _shard_engine(tmp_path, _random_table(19))
        engine.execute_statement(DDL)
        status = engine.view_status("weekly")
        assert status["table"] == "G"
        assert status["persisted"] is True
        assert status["shards_cached"] == status["shards_total"]


# ---------------------------------------------------------------------------
# Disk store: durability of the write-temp + replace seam
# ---------------------------------------------------------------------------


class TestWriteAtomicDurability:
    def test_fsync_precedes_replace(self, tmp_path, monkeypatch):
        """Regression: partial files must be fsynced before the rename.

        Without the fsync a crash shortly after ``os.replace`` can leave
        the *final* path pointing at zero-length or partial bytes on
        some filesystems — surfaced by repolint's fsync-before-replace
        rule and pinned here.
        """
        import repro.views.store as store_mod

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            store_mod.os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            store_mod.os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1])

        store = DiskViewStore(tmp_path / "VIEWS")
        store._write_atomic(tmp_path / "VIEWS" / "x.json", {"k": 1})

        assert events == ["fsync", "replace"]
        data = json.loads((tmp_path / "VIEWS" / "x.json").read_text())
        assert data == {"k": 1}
        assert not (tmp_path / "VIEWS" / "x.json.tmp").exists()


# ---------------------------------------------------------------------------
# Service: dispositions and counters
# ---------------------------------------------------------------------------


class TestServiceViews:
    def test_dispositions(self, tmp_path):
        table = _random_table(20, n_users=30)
        batches = _user_batches(table, 2)
        sdir = tmp_path / "G"
        append_shard(sdir, batches[0], target_chunk_rows=16)
        engine = CohanaEngine()
        engine.load_table("G", sdir)
        engine.execute_statement(DDL)
        service = QueryService(engine)

        _, stats = service.serve_view("weekly")
        assert stats.cache_disposition == "miss"  # partials were warm
        _, stats = service.serve_view("weekly")
        assert stats.cache_disposition == "hit"
        _, stats = service.serve_view("weekly", use_cache=False)
        assert stats.cache_disposition == "bypass"

        append_shard(sdir, batches[1], target_chunk_rows=16)
        engine.refresh_table("G", refresh_views=False)
        result, stats = service.serve_view("weekly")
        assert stats.cache_disposition == "refresh"
        assert stats.shards_scanned == 1
        assert result.rows == engine.query(QUERY).rows

        counters = service.counters.as_dict()
        assert counters["refreshes"] == 1
        assert counters["hits"] == 1
        assert counters["bypasses"] == 1

    def test_view_and_direct_query_share_cache(self, tmp_path):
        engine, _ = _shard_engine(tmp_path, _random_table(21))
        engine.execute_statement(DDL)
        service = QueryService(engine)
        service.query(engine.parse(QUERY))  # warms the result cache
        _, stats = service.serve_view("weekly")
        assert stats.cache_disposition == "hit"


# ---------------------------------------------------------------------------
# CLI: the view subcommand and the serve frontend DDL path
# ---------------------------------------------------------------------------


class TestCliViews:
    def _setup(self, tmp_path):
        sdir = tmp_path / "G"
        for batch in _user_batches(_random_table(22, n_users=30), 2):
            append_shard(sdir, batch, target_chunk_rows=16)
        return sdir

    def test_create_list_serve_refresh_drop(self, tmp_path, capsys):
        sdir = self._setup(tmp_path)
        assert main(["view", "create", str(sdir), DDL]) == 0
        assert "created view weekly" in capsys.readouterr().out

        assert main(["view", "list", str(sdir)]) == 0
        assert "weekly: table=G" in capsys.readouterr().out

        assert main(["view", "refresh", str(sdir)]) == 0
        assert "scanned 0 of 2 shards" in capsys.readouterr().out

        assert main(["view", "serve", str(sdir), "weekly",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "cohort_size" in out
        assert "[shards 0/2" in out

        assert main(["view", "drop", str(sdir), "weekly"]) == 0
        capsys.readouterr()
        assert main(["view", "list", str(sdir)]) == 1

    def test_serve_frontend_ddl_and_meta(self, tmp_path, capsys,
                                         monkeypatch):
        import io
        sdir = self._setup(tmp_path)
        script = "\n".join([
            DDL + ";",
            QUERY + ";",
            ".views",
            ".view weekly",
            "DROP MATERIALIZED VIEW weekly;",
            ".quit",
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", str(sdir)]) == 0
        out = capsys.readouterr().out
        assert "view weekly: 2/2 shard partials cached" in out
        assert "weekly: table=G shards=2/2" in out
        assert "dropped view weekly" in out

    def test_serve_frontend_ddl_error_does_not_kill_session(
            self, tmp_path, capsys, monkeypatch):
        import io
        sdir = self._setup(tmp_path)
        script = ("DROP MATERIALIZED VIEW missing;\n"
                  + QUERY + ";\n")
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", str(sdir)]) == 0
        captured = capsys.readouterr()
        assert "unknown view" in captured.err
        assert "cohort_size" in captured.out
