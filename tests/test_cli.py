"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def demo_csv(tmp_path):
    path = tmp_path / "demo.csv"
    assert main(["generate", str(path), "--users", "8", "--seed",
                 "5"]) == 0
    return path


@pytest.fixture
def demo_cohana(tmp_path, demo_csv):
    path = tmp_path / "demo.cohana"
    assert main(["compress", str(demo_csv), str(path), "--chunk-rows",
                 "64"]) == 0
    return path


class TestGenerate:
    def test_writes_csv(self, demo_csv, capsys):
        assert demo_csv.exists()
        header = demo_csv.read_text().splitlines()[0]
        assert header.split(",")[:3] == ["player", "time", "action"]

    def test_scale_flag(self, tmp_path, capsys):
        path = tmp_path / "s2.csv"
        assert main(["generate", str(path), "--users", "4", "--scale",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "(8 users)" in out


class TestCompressInspect:
    def test_compress_roundtrip(self, demo_cohana, capsys):
        assert demo_cohana.exists()
        assert main(["inspect", str(demo_cohana)]) == 0
        out = capsys.readouterr().out
        assert "bits/tuple" in out
        assert "[dict]" in out and "[delta]" in out

    def test_compress_missing_input(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["compress", str(tmp_path / "nope.csv"),
                  str(tmp_path / "out.cohana")])

    def test_inspect_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.cohana"
        bad.write_bytes(b"not a cohana file at all")
        assert main(["inspect", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


QUERY = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM D '
         'BIRTH FROM action = "launch" COHORT BY country')


class TestQuery:
    def test_query_runs(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana), QUERY]) == 0
        out = capsys.readouterr().out
        assert "cohort_size" in out

    def test_query_pivot(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana), QUERY, "--pivot"]) == 0
        assert "by (cohort, age)" in capsys.readouterr().out

    def test_query_explain(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana), QUERY, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "TableScan" in out
        assert "Execution(backend=serial, jobs=1, scan_mode=auto)" in out

    def test_query_explain_shows_jobs_and_backend(self, demo_cohana,
                                                  capsys):
        """--explain reflects --jobs/--backend instead of ignoring them;
        jobs>1 on an on-disk table auto-resolves to processes."""
        assert main(["query", str(demo_cohana), QUERY, "--explain",
                     "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Execution(backend=processes, jobs=4" in out
        assert main(["query", str(demo_cohana), QUERY, "--explain",
                     "--jobs", "2", "--backend", "threads",
                     "--scan-mode", "compressed"]) == 0
        out = capsys.readouterr().out
        assert "Execution(backend=threads, jobs=2, " \
               "scan_mode=compressed)" in out

    def test_query_explain_operator_tree_counters(self, demo_cohana,
                                                  capsys):
        """--explain prints the physical operator tree, one line per
        operator, annotated with rows-in/rows-out and prune counts."""
        assert main(["query", str(demo_cohana), QUERY, "--explain"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("CohortAggregate(")
        assert "[kernel=vectorized]" in lines[0]
        assert " rows_out=" in lines[0]
        stripped = [line.lstrip() for line in lines]
        assert any(line.startswith("CohortProject(")
                   and " rows_in=" in line and " cohorts=" in line
                   for line in stripped)
        assert any(line.startswith("AgeSelect(")
                   and " rows_in=" in line and " rows_out=" in line
                   for line in stripped)
        assert any(line.startswith("BirthSelect(")
                   and " users_in=" in line and " users_out=" in line
                   for line in stripped)
        assert any(line.startswith("TableScan(")
                   and " chunks=" in line and " pruned=" in line
                   and " rows_out=" in line
                   for line in stripped)

    def test_query_processes_backend_matches_serial(self, demo_cohana,
                                                    capsys):
        assert main(["query", str(demo_cohana), QUERY,
                     "--backend", "serial"]) == 0
        serial = capsys.readouterr().out
        assert main(["query", str(demo_cohana), QUERY, "--jobs", "2",
                     "--backend", "processes"]) == 0
        assert capsys.readouterr().out == serial

    def test_query_iterator_matches_vectorized(self, demo_cohana,
                                               capsys):
        assert main(["query", str(demo_cohana), QUERY]) == 0
        vec = capsys.readouterr().out
        assert main(["query", str(demo_cohana), QUERY, "--executor",
                     "iterator"]) == 0
        assert capsys.readouterr().out == vec

    def test_query_time_cohorts_with_origin(self, demo_cohana, capsys):
        text = ('SELECT time, COHORTSIZE, AGE, UserCount() FROM D '
                'BIRTH FROM action = "launch" COHORT BY time UNIT week')
        assert main(["query", str(demo_cohana), text, "--origin",
                     "2013-05-19", "--age-unit", "week"]) == 0
        assert "2013-05" in capsys.readouterr().out

    def test_bad_query_text(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana),
                     "SELECT nothing sensible"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBench:
    def test_unknown_experiment(self, capsys):
        assert main(["bench", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().out
