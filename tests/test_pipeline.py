"""Chunk-pipeline tests: executor parity across kernels and job counts,
pruning accounting, ExecutionConfig resolution, and merge streaming."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.cohana import (
    ChunkScheduler,
    CohanaEngine,
    ExecutionConfig,
    KERNELS,
)
from repro.cohana.pipeline import (
    ChunkPartial,
    ExecStats,
    MergeState,
    finalize_partial,
    get_kernel,
    merge_partial,
)
from repro.datagen import GameConfig, generate, scale_dataset
from repro.workloads import MAIN_QUERIES

from helpers import make_table1

TABLE = "GameActions"

Q1_TEXT = """
SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
FROM D
BIRTH FROM action = "launch" AND role = "dwarf"
AGE ACTIVITIES IN action = "shop"
COHORT BY country
"""

#: A query covering every aggregate function at once.
ALL_AGGS = """
SELECT country, COHORTSIZE, AGE, Sum(gold) AS s, Avg(gold) AS a,
       Min(gold) AS mn, Max(gold) AS mx, Count() AS c, UserCount() AS u
FROM GameActions
BIRTH FROM action = "launch"
AGE ACTIVITIES IN action = "shop"
COHORT BY country
"""


@pytest.fixture
def table1_engine():
    eng = CohanaEngine()
    eng.create_table("D", make_table1(), target_chunk_rows=4)
    return eng


@pytest.fixture(scope="module")
def game_engine():
    eng = CohanaEngine()
    table = scale_dataset(generate(GameConfig(n_users=57, seed=7)), 1)
    eng.create_table(TABLE, table, target_chunk_rows=512)
    return eng


class TestExecutorParity:
    """Same rows for every (kernel, jobs) combination — the acceptance
    bar for making the hot path parallel."""

    @pytest.mark.parametrize("executor", ("vectorized", "iterator"))
    def test_table1_jobs_parity(self, table1_engine, executor):
        base = table1_engine.query(Q1_TEXT, executor=executor, jobs=1)
        par = table1_engine.query(Q1_TEXT, executor=executor, jobs=4)
        assert par.rows == base.rows
        assert par.columns == base.columns

    @pytest.mark.parametrize("executor", ("vectorized", "iterator"))
    @pytest.mark.parametrize("qname", sorted(MAIN_QUERIES))
    def test_generated_dataset_jobs_parity(self, game_engine, executor,
                                           qname):
        text = MAIN_QUERIES[qname](TABLE)
        base = game_engine.query(text, executor=executor, jobs=1)
        par = game_engine.query(text, executor=executor, jobs=4)
        assert par.rows == base.rows

    def test_kernel_families_agree_on_all_aggregates(self, game_engine):
        vec = game_engine.query(ALL_AGGS, executor="vectorized", jobs=4)
        it = game_engine.query(ALL_AGGS, executor="iterator", jobs=4)
        assert vec.rows == it.rows
        assert len(vec.rows) > 0

    def test_stats_identical_across_jobs(self, game_engine):
        _, serial = game_engine.query_with_stats(ALL_AGGS, jobs=1)
        _, threaded = game_engine.query_with_stats(ALL_AGGS, jobs=4)
        assert serial == threaded
        assert threaded.chunks_scanned > 1  # the parallelism is real


class TestPruningAccounting:
    """Pruning is decided and counted once, in the scheduler."""

    @pytest.mark.parametrize("executor", ("vectorized", "iterator"))
    @pytest.mark.parametrize("jobs", (1, 4))
    def test_chunk_counters_add_up(self, game_engine, executor, jobs):
        _, stats = game_engine.query_with_stats(
            ALL_AGGS, executor=executor, jobs=jobs)
        assert stats.chunks_pruned + stats.chunks_scanned \
            == stats.chunks_total

    def test_pruned_chunks_are_skipped(self):
        # One user per chunk: 'fight' is absent from user 002's chunk,
        # so its action chunk-dictionary prunes that chunk.
        eng = CohanaEngine()
        eng.create_table("D", make_table1(), target_chunk_rows=2)
        text = Q1_TEXT.replace('action = "launch" AND role = "dwarf"',
                               'action = "fight"')
        _, stats = eng.query_with_stats(text)
        assert stats.chunks_total == 3
        assert stats.chunks_pruned > 0
        assert stats.chunks_pruned + stats.chunks_scanned \
            == stats.chunks_total
        _, unpruned = eng.query_with_stats(text, prune=False)
        assert unpruned.chunks_pruned == 0
        assert unpruned.chunks_scanned == unpruned.chunks_total

    def test_scheduler_tasks_match_scan_count(self, game_engine):
        plan = game_engine.plan(ALL_AGGS)
        scheduler = ChunkScheduler(game_engine.table(TABLE), plan,
                                   "vectorized")
        stats = ExecStats()
        tasks = scheduler.tasks(stats)
        assert len(tasks) == stats.chunks_scanned
        _, run_stats = scheduler.run()
        assert run_stats.chunks_scanned == stats.chunks_scanned
        assert run_stats.chunks_pruned == stats.chunks_pruned


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert (config.backend, config.jobs) == ("serial", 1)

    def test_resolve_picks_threads_for_parallel_jobs(self):
        assert ExecutionConfig.resolve(jobs=4).backend == "threads"
        assert ExecutionConfig.resolve(jobs=1).backend == "serial"
        assert ExecutionConfig.resolve(jobs=4,
                                       backend="serial").backend == "serial"

    def test_rejects_bad_backend_and_jobs(self):
        with pytest.raises(ExecutionError, match="backend"):
            ExecutionConfig(backend="mpi")
        with pytest.raises(ExecutionError, match="jobs"):
            ExecutionConfig(jobs=0)

    def test_unknown_kernel(self):
        with pytest.raises(CatalogError, match="executor"):
            get_kernel("quantum")

    def test_registry_has_both_families(self):
        assert {"vectorized", "iterator"} <= set(KERNELS)

    def test_config_conflicts_with_loose_options(self, game_engine):
        with pytest.raises(ExecutionError, match="not both"):
            game_engine.query(ALL_AGGS, jobs=8, config=ExecutionConfig())
        # config alone is fine.
        result = game_engine.query(
            ALL_AGGS, config=ExecutionConfig(backend="threads", jobs=2))
        assert len(result.rows) > 0

    def test_collect_stats_off_keeps_chunk_counters(self, game_engine):
        result, stats = game_engine.query_with_stats(ALL_AGGS, jobs=2,
                                                     collect_stats=False)
        assert len(result.rows) > 0
        assert stats.chunks_scanned > 0
        assert stats.rows_scanned == 0  # detailed counters not gathered


class TestMergeProtocol:
    def test_merge_partial_all_functions(self):
        assert merge_partial("SUM", 3, 4) == 7
        assert merge_partial("COUNT", None, 5) == 5
        assert merge_partial("USERCOUNT", 2, 3) == 5
        assert merge_partial("AVG", (10, 2), (5, 1)) == (15, 3)
        assert merge_partial("MIN", 8, 3) == 3
        assert merge_partial("MAX", 8, 3) == 8
        with pytest.raises(ExecutionError):
            merge_partial("MEDIAN", 1, 2)

    def test_finalize_partial(self):
        assert finalize_partial("AVG", (10, 4)) == 2.5
        assert finalize_partial("AVG", (0, 0)) is None
        assert finalize_partial("SUM", 9) == 9
        assert finalize_partial("SUM", None) is None

    def test_merge_state_is_order_independent(self, game_engine):
        plan = game_engine.plan(ALL_AGGS)
        table = game_engine.table(TABLE)
        kernel = KERNELS["vectorized"]
        partials = [kernel.scan(table, chunk, plan)
                    for chunk in table.chunks]
        forward = MergeState(plan.query)
        backward = MergeState(plan.query)
        for p in partials:
            forward.absorb(p, ExecStats())
        for p in reversed(partials):
            backward.absorb(p, ExecStats())
        assert forward.cohort_sizes == backward.cohort_sizes
        assert forward.buckets == backward.buckets

    def test_chunk_partial_accumulates(self):
        partial = ChunkPartial(n_aggregates=2)
        partial.add_cohort_size(("AU",), 2)
        partial.add_cohort_size(("AU",), 1)
        assert partial.cohort_sizes == {("AU",): 3}
        partial.add_partial((("AU",), 1), 0, "SUM", 10)
        partial.add_partial((("AU",), 1), 0, "SUM", 5)
        partial.add_partial((("AU",), 1), 1, "AVG", (10, 2))
        assert partial.buckets[(("AU",), 1)] == [15, (10, 2)]
