"""Sharded multi-file tables: manifest, append path, execution, cache.

Covers the PR-5 tentpole: manifest round-trip and validation, the
append-only ingestion path (new shard + atomic manifest replace,
existing bytes untouched, user-disjointness enforced), lazy sharded
loading, digest-exact query parity against a single-file table across
kernels / backends / scan modes, per-shard pruning stats, composed
version tokens, service invalidation on append (with warm caches on
byte-identical reloads), the per-shard plan cache, and the ``ingest``
CLI command.
"""

import hashlib
import json
import threading

import pytest

from repro.cli import main
from repro.cohana import CohanaEngine
from repro.cohana.pipeline import (
    SHARD_PLAN_CACHE_STATS,
    clear_shard_plan_cache,
)
from repro.datagen import GameConfig, generate
from repro.errors import CatalogError, StorageError
from repro.service import QueryService
from repro.storage import (
    MANIFEST_NAME,
    ShardedActivityTable,
    append_shard,
    compose_digest,
    compress,
    is_sharded_path,
    load,
    read_manifest,
    save,
)

from helpers import make_table1

QUERY = ('SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent FROM G '
         'BIRTH FROM action = "launch" COHORT BY country')
ROLE_QUERY = ('SELECT role, COHORTSIZE, AGE, UserCount() FROM G '
              'BIRTH FROM action = "shop" COHORT BY role')


def _user_batches(table, n):
    """Contiguous user-disjoint slices of a sorted activity table."""
    table = table.sorted_by_primary_key()
    blocks = list(table.user_blocks())
    per = max(1, -(-len(blocks) // n))
    return [table.slice(blocks[i][1], blocks[min(i + per, len(blocks))
                                             - 1][2])
            for i in range(0, len(blocks), per)]


def _digest(result):
    return hashlib.sha256(repr(result.rows).encode()).hexdigest()


@pytest.fixture(scope="module")
def parts():
    """Five user-disjoint batches of one generated dataset: four form
    the table under test, the fifth is the 'new data' of append tests."""
    full = generate(GameConfig(n_users=30, seed=3))
    return _user_batches(full, 5)


@pytest.fixture
def game(parts):
    table = parts[0]
    for batch in parts[1:4]:
        table = table.concat(batch)
    return table


@pytest.fixture
def shard_dir(tmp_path, parts):
    d = tmp_path / "G"
    for batch in parts[:4]:
        append_shard(d, batch, target_chunk_rows=64)
    return d


@pytest.fixture
def single_path(tmp_path, game):
    path = tmp_path / "G.cohana"
    save(compress(game.sorted_by_primary_key(), target_chunk_rows=64),
         path)
    return path


# -- manifest + append path ---------------------------------------------------


class TestManifestAndAppend:
    def test_first_append_creates_table(self, tmp_path):
        d = tmp_path / "t"
        entry = append_shard(d, make_table1(), target_chunk_rows=4)
        assert is_sharded_path(d)
        assert (d / entry["path"]).is_file()
        manifest = read_manifest(d)
        assert manifest["format"] == "cohana-sharded"
        assert [s["path"] for s in manifest["shards"]] == [entry["path"]]
        assert not (d / (MANIFEST_NAME + ".tmp")).exists()

    def test_append_never_rewrites_existing_bytes(self, tmp_path, game):
        d = tmp_path / "t"
        b1, b2 = _user_batches(game, 2)
        first = append_shard(d, b1, target_chunk_rows=64)
        before = (d / first["path"]).read_bytes()
        append_shard(d, b2, target_chunk_rows=64)
        assert (d / first["path"]).read_bytes() == before
        assert len(read_manifest(d)["shards"]) == 2

    def test_append_rejects_user_overlap(self, tmp_path, game):
        d = tmp_path / "t"
        b1, b2 = _user_batches(game, 2)
        append_shard(d, b1, target_chunk_rows=64)
        with pytest.raises(StorageError, match="split .* user"):
            append_shard(d, b1, target_chunk_rows=64)
        # the failed append must not have changed the table
        assert len(read_manifest(d)["shards"]) == 1

    def test_append_rejects_empty_batch(self, tmp_path, game):
        with pytest.raises(StorageError, match="empty"):
            append_shard(tmp_path / "t", game.slice(0, 0))

    def test_append_rejects_schema_mismatch(self, tmp_path, game):
        d = tmp_path / "t"
        append_shard(d, _user_batches(game, 2)[0], target_chunk_rows=64)
        with pytest.raises(StorageError, match="schema"):
            append_shard(d, make_table1(), target_chunk_rows=4)

    def test_manifest_validation(self, tmp_path, shard_dir):
        with pytest.raises(StorageError, match="missing"):
            read_manifest(tmp_path / "nope")
        manifest_path = shard_dir / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="format"):
            load(shard_dir)

    def test_missing_shard_file_fails(self, shard_dir):
        victim = read_manifest(shard_dir)["shards"][0]["path"]
        (shard_dir / victim).unlink()
        with pytest.raises(StorageError, match="missing"):
            load(shard_dir)

    def test_swapped_shard_fails_digest_check(self, shard_dir):
        shards = read_manifest(shard_dir)["shards"]
        a = (shard_dir / shards[0]["path"])
        b = (shard_dir / shards[1]["path"])
        a.write_bytes(b.read_bytes())
        with pytest.raises(StorageError, match="digest mismatch"):
            load(shard_dir)


# -- the sharded table facade -------------------------------------------------


class TestShardedTable:
    def test_load_and_shape(self, shard_dir, game):
        table = load(shard_dir)
        assert isinstance(table, ShardedActivityTable)
        assert table.is_sharded and table.n_shards == 4
        assert table.n_rows == len(game)
        assert table.n_users == len(game.distinct_users())
        assert table.n_chunks == sum(s.n_chunks for s in table.shards)

    def test_load_via_manifest_path(self, shard_dir):
        table = load(shard_dir / MANIFEST_NAME)
        assert table.is_sharded

    def test_shards_load_lazily(self, shard_dir):
        table = load(shard_dir)
        assert all(s.is_lazy for s in table.shards)
        assert all(s.chunks.loaded_count == 0 for s in table.shards)

    def test_roundtrip_decompress(self, shard_dir, game):
        assert load(shard_dir).decompress() == \
            game.sorted_by_primary_key()

    def test_chunk_view_locates_owners(self, shard_dir):
        table = load(shard_dir)
        seen = 0
        for i, shard in enumerate(table.shards):
            for local in range(shard.n_chunks):
                assert table.shard_of(seen) == (i, local)
                assert table.chunks[seen] is shard.chunks[local]
                seen += 1
        with pytest.raises(IndexError):
            table.chunks[seen]
        assert table.chunks[-1] is table.shards[-1].chunks[-1]

    def test_decode_chunk_refuses_merged_space(self, shard_dir):
        table = load(shard_dir)
        with pytest.raises(StorageError, match="owning shard"):
            table.decode_chunk(table.chunks[0])

    def test_composed_digest_tracks_shard_set(self, shard_dir, game):
        table = load(shard_dir)
        assert table.content_digest == compose_digest(
            table.shard_digests)
        assert load(shard_dir).content_digest == table.content_digest


# -- execution parity ---------------------------------------------------------


class TestShardedExecution:
    @pytest.fixture
    def engines(self, shard_dir, single_path):
        sharded, single = CohanaEngine(), CohanaEngine()
        sharded.load_table("G", shard_dir)
        single.load_table("G", single_path)
        return sharded, single

    @pytest.mark.parametrize("executor", ("vectorized", "iterator"))
    @pytest.mark.parametrize("scan_mode", ("auto", "decoded",
                                           "compressed"))
    def test_digest_parity_across_modes(self, engines, executor,
                                        scan_mode):
        sharded, single = engines
        for text in (QUERY, ROLE_QUERY):
            a = sharded.query(text, executor=executor,
                              scan_mode=scan_mode)
            b = single.query(text, executor=executor,
                             scan_mode=scan_mode)
            assert _digest(a) == _digest(b)

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_digest_parity_across_backends(self, engines, backend):
        sharded, single = engines
        a = sharded.query(QUERY, jobs=2, backend=backend)
        assert _digest(a) == _digest(single.query(QUERY))

    def test_append_then_query_parity(self, tmp_path, game):
        """Growing a table batch by batch answers exactly like the
        single file holding the same data, at every step."""
        d = tmp_path / "grow"
        seen = None
        for batch in _user_batches(game, 3):
            append_shard(d, batch, target_chunk_rows=64)
            seen = batch if seen is None else seen.concat(batch)
            sharded = CohanaEngine()
            sharded.load_table("G", d)
            single = CohanaEngine()
            single.create_table("G", seen, target_chunk_rows=64)
            assert _digest(sharded.query(QUERY)) == \
                _digest(single.query(QUERY))

    def test_labels_merge_in_value_space(self, tmp_path):
        """Shards have independent dictionaries, so equal cohort labels
        from different shards carry different global ids — the merge
        must happen on values, not ids."""
        t = make_table1()
        d = tmp_path / "t"
        # users 001 (Australia) / 002 (US) / 003 (China): every shard
        # gets a different country dictionary.
        for start, stop in ((0, 5), (5, 8), (8, 10)):
            append_shard(d, t.slice(start, stop), target_chunk_rows=4)
        sharded = CohanaEngine()
        sharded.load_table("G", d)
        single = CohanaEngine()
        single.create_table("G", t, target_chunk_rows=4)
        for executor in ("vectorized", "iterator"):
            assert sharded.query(QUERY, executor=executor).rows == \
                single.query(QUERY, executor=executor).rows

    def test_explain_resolves_on_sharded_table(self, engines):
        sharded, _ = engines
        text = sharded.explain(QUERY, jobs=2)
        assert "backend=processes" in text  # on-disk: workers by path


# -- pruning ------------------------------------------------------------------


class TestShardedPruning:
    def test_per_shard_pruning_stats(self, tmp_path):
        """A birth value confined to one shard prunes the other shards
        from their own metadata; the counters say so."""
        t = make_table1()
        d = tmp_path / "t"
        for start, stop in ((0, 5), (5, 8), (8, 10)):
            append_shard(d, t.slice(start, stop), target_chunk_rows=4)
        eng = CohanaEngine()
        eng.load_table("G", d)
        text = ('SELECT role, COHORTSIZE, AGE, UserCount() FROM G '
                'BIRTH FROM action = "launch" AND country = "China" '
                'COHORT BY role')
        result, stats = eng.query_with_stats(text,
                                             scan_mode="compressed")
        assert stats.shards_total == 3
        assert stats.shards_scanned == 1  # only the China shard
        assert stats.chunks_scanned == 1
        assert stats.chunks_pruned == stats.chunks_total - 1
        assert [row[0] for row in result.rows] == ["bandit"]

    def test_action_missing_from_shard_counts_as_pruned(self, tmp_path):
        """A shard whose dictionary lacks the birth action entirely is
        the shard-level action-dictionary miss; its chunks must land in
        chunks_pruned so the ExecStats invariant holds."""
        t = make_table1()
        d = tmp_path / "t"
        # user 003 never shops: the third shard has no "shop" action.
        for start, stop in ((0, 5), (5, 8), (8, 10)):
            append_shard(d, t.slice(start, stop), target_chunk_rows=4)
        eng = CohanaEngine()
        eng.load_table("G", d)
        text = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM G '
                'BIRTH FROM action = "shop" COHORT BY country')
        _, stats = eng.query_with_stats(text)
        assert stats.shards_total == 3
        assert stats.shards_scanned == 2
        assert stats.chunks_pruned + stats.chunks_scanned \
            == stats.chunks_total

    def test_pruning_is_result_neutral(self, shard_dir):
        eng = CohanaEngine()
        eng.load_table("G", shard_dir)
        with_prune = eng.query(ROLE_QUERY)
        without = eng.query(ROLE_QUERY, prune=False)
        assert with_prune.rows == without.rows


# -- version tokens, service invalidation, plan cache -------------------------


class TestShardedService:
    def test_append_invalidates_byte_identical_reload_does_not(
            self, shard_dir, parts):
        eng = CohanaEngine()
        eng.load_table("G", shard_dir)
        service = QueryService(eng)
        _, stats = service.query_with_stats(QUERY)
        assert stats.cache_disposition == "miss"
        token = eng.version_token("G")
        assert token.startswith("sha256:")

        # Byte-identical reload: same composed digest, caches warm.
        eng.refresh_table("G")
        assert eng.version_token("G") == token
        _, stats = service.query_with_stats(QUERY)
        assert stats.cache_disposition == "hit"

        # Append: the composed digest moves, the cache invalidates.
        append_shard(shard_dir, parts[4], target_chunk_rows=64)
        eng.refresh_table("G")
        assert eng.version_token("G") != token
        _, stats = service.query_with_stats(QUERY)
        assert stats.cache_disposition == "invalidated"

    def test_untouched_shard_plans_stay_warm_across_append(
            self, shard_dir, parts):
        clear_shard_plan_cache()
        eng = CohanaEngine()
        eng.load_table("G", shard_dir)
        eng.query(QUERY)
        misses_before = SHARD_PLAN_CACHE_STATS["misses"]
        hits_before = SHARD_PLAN_CACHE_STATS["hits"]
        append_shard(shard_dir, parts[4], target_chunk_rows=64)
        eng.refresh_table("G")
        eng.query(QUERY)
        # only the new shard needed planning; the four old shards hit.
        assert SHARD_PLAN_CACHE_STATS["misses"] == misses_before + 1
        assert SHARD_PLAN_CACHE_STATS["hits"] >= hits_before + 4

    def test_refresh_requires_disk_backing(self):
        eng = CohanaEngine()
        eng.create_table("M", make_table1())
        with pytest.raises(CatalogError, match="not loaded from disk"):
            eng.refresh_table("M")


class TestEngineConcurrency:
    def test_concurrent_registrations_get_unique_tokens(self):
        """mem: tokens come from a guarded counter — concurrent
        replacements must never share one."""
        eng = CohanaEngine()
        compressed = compress(make_table1(), target_chunk_rows=4)
        tokens = []
        lock = threading.Lock()

        def register(i):
            for _ in range(20):
                eng.register(f"T{i}", compressed, replace=True)
                token = eng.version_token(f"T{i}")
                with lock:
                    tokens.append(token)

        threads = [threading.Thread(target=register, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(tokens)) == len(tokens)


# -- CLI ----------------------------------------------------------------------


class TestIngestCLI:
    @pytest.fixture
    def csvs(self, tmp_path, game):
        from repro.table import write_csv

        paths = []
        for i, batch in enumerate(_user_batches(game, 2)):
            path = tmp_path / f"batch{i}.csv"
            write_csv(batch, path)
            paths.append(path)
        return paths

    def test_ingest_create_append_query(self, tmp_path, csvs, capsys):
        d = tmp_path / "table"
        assert main(["ingest", str(csvs[0]), str(d),
                     "--chunk-rows", "64"]) == 0
        assert "created" in capsys.readouterr().out
        assert main(["ingest", str(csvs[1]), str(d), "--append",
                     "--chunk-rows", "64"]) == 0
        assert "2 shards" in capsys.readouterr().out
        assert main(["query", str(d), QUERY]) == 0
        assert "cohort_size" in capsys.readouterr().out

    def test_ingest_existing_requires_append_flag(self, tmp_path, csvs,
                                                  capsys):
        d = tmp_path / "table"
        assert main(["ingest", str(csvs[0]), str(d)]) == 0
        capsys.readouterr()
        assert main(["ingest", str(csvs[1]), str(d)]) == 1
        assert "--append" in capsys.readouterr().err

    def test_ingest_overlap_is_clean_error(self, tmp_path, csvs,
                                           capsys):
        d = tmp_path / "table"
        assert main(["ingest", str(csvs[0]), str(d)]) == 0
        assert main(["ingest", str(csvs[0]), str(d), "--append"]) == 1
        assert "one shard" in capsys.readouterr().err
