"""Tests for the experiment report runner shared by CLI and run_all."""

import pytest

from repro.bench import Report
from repro.bench.report_runner import run_and_print
from repro.bench import report_runner


def _fake_report():
    report = Report(title="fake", x_label="x", y_label="y")
    report.series_named("line").add(1, 0.5)
    return report


def _fake_list():
    return [_fake_report(), _fake_report()]


@pytest.fixture
def fake_registry(monkeypatch):
    monkeypatch.setattr(report_runner, "EXPERIMENTS",
                        {"one": _fake_report, "many": _fake_list})


class TestRunAndPrint:
    def test_runs_all_by_default(self, fake_registry, capsys):
        assert run_and_print() == 0
        out = capsys.readouterr().out
        assert out.count("== fake ==") == 3
        assert "[one finished" in out
        assert "[many finished" in out

    def test_runs_selected(self, fake_registry, capsys):
        assert run_and_print(["one"]) == 0
        out = capsys.readouterr().out
        assert out.count("== fake ==") == 1

    def test_unknown_name(self, fake_registry, capsys):
        assert run_and_print(["nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_list_results_flattened(self, fake_registry, capsys):
        assert run_and_print(["many"]) == 0
        assert capsys.readouterr().out.count("== fake ==") == 2
