"""Tests for the SQL and MV schemes: worked examples + 6-way differential."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.baselines import (
    SYSTEMS,
    MvScheme,
    SqlScheme,
    cohort_query_to_sql,
    mv_creation_sql,
    prepare_system,
    run_everywhere,
)
from repro.cohort import (
    AggregateSpec,
    Between,
    CohortQuery,
    Compare,
    age_ref,
    attr,
    birth,
    eq,
    evaluate as oracle_evaluate,
    lit,
)
from repro.relational import Database
from repro.table import ActivityTable

from helpers import make_game_schema, make_table1

Q1 = CohortQuery(
    birth_action="launch",
    cohort_by=("country",),
    aggregates=(AggregateSpec("SUM", "gold", "spent"),),
    birth_condition=eq("role", "dwarf"),
    age_condition=eq("action", "shop"),
    table="D",
)


def make_sql_scheme(executor="rows"):
    db = Database(executor=executor)
    table = make_table1()
    db.register_activity_table("D", table)
    return SqlScheme(db, "D", table.schema)


def make_mv_scheme(executor="rows", birth_actions=("launch", "shop")):
    db = Database(executor=executor)
    table = make_table1()
    db.register_activity_table("D", table)
    scheme = MvScheme(db, "D", table.schema)
    for action in birth_actions:
        scheme.prepare(action)
    return scheme


class TestSqlScheme:
    def test_q1_matches_oracle(self):
        expected = oracle_evaluate(Q1, make_table1())
        for executor in ("rows", "columnar"):
            got = make_sql_scheme(executor).run(Q1)
            assert got.rows == expected.rows

    def test_generated_sql_shape(self, game_schema):
        sql = cohort_query_to_sql(Q1, game_schema, "D")
        assert "WITH birth AS" in sql
        assert "Min(time)" in sql
        assert "qualified" in sql
        assert "Count(DISTINCT p) AS cohort_size" in sql
        assert "rawage > 0" in sql

    def test_usercount_translated_to_count_distinct(self, game_schema):
        query = CohortQuery(
            birth_action="launch", cohort_by=("country",),
            aggregates=(AggregateSpec("USERCOUNT", None, "retained"),),
            table="D")
        sql = cohort_query_to_sql(query, game_schema, "D")
        assert "Count(DISTINCT l.p) AS retained" in sql

    def test_birth_function_in_age_condition(self):
        query = CohortQuery(
            birth_action="shop", cohort_by=("country",),
            aggregates=(AggregateSpec("AVG", "gold", "m"),),
            age_condition=Compare(attr("role"), "=", birth("role")),
            table="D")
        expected = oracle_evaluate(query, make_table1())
        got = make_sql_scheme().run(query)
        assert _approx(got.rows) == _approx(expected.rows)

    def test_age_keyword_in_age_condition(self):
        query = CohortQuery(
            birth_action="launch", cohort_by=("country",),
            aggregates=(AggregateSpec("USERCOUNT", None, "m"),),
            age_condition=Compare(age_ref(), "<", lit(2)),
            table="D")
        expected = oracle_evaluate(query, make_table1())
        assert make_sql_scheme().run(query).rows == expected.rows

    def test_time_cohorts(self):
        from repro.schema import parse_timestamp
        query = CohortQuery(
            birth_action="launch", cohort_by=("time",),
            aggregates=(AggregateSpec("COUNT", None, "n"),),
            cohort_time_bin="week",
            time_bin_origin=parse_timestamp("2013-05-19"),
            table="D")
        expected = oracle_evaluate(query, make_table1())
        assert make_sql_scheme().run(query).rows == expected.rows


class TestMvScheme:
    def test_q1_matches_oracle(self):
        expected = oracle_evaluate(Q1, make_table1())
        for executor in ("rows", "columnar"):
            got = make_mv_scheme(executor).run(Q1)
            assert got.rows == expected.rows

    def test_mv_contains_birth_attributes(self, game_schema):
        sql = mv_creation_sql(game_schema, "D", "launch")
        assert "b_role" in sql and "b_country" in sql
        assert "rawage" in sql

    def test_mv_row_count_equals_born_users_tuples(self):
        scheme = make_mv_scheme(birth_actions=("shop",))
        mv = scheme.db.table("D_mv_shop")
        # players 001 and 002 shop; player 003 (2 tuples) never does
        assert len(mv) == 8

    def test_mv_storage_wider_than_base(self):
        scheme = make_mv_scheme(birth_actions=("launch",))
        base = scheme.db.table("D")
        mv = scheme.db.table("D_mv_launch")
        assert len(mv.names) > len(base.names)

    def test_unprepared_birth_action_rejected(self):
        scheme = make_mv_scheme(birth_actions=("launch",))
        query = CohortQuery(
            birth_action="shop", cohort_by=("country",),
            aggregates=(AggregateSpec("SUM", "gold", "m"),), table="D")
        with pytest.raises(QueryError, match="materialized view"):
            scheme.run(query)

    def test_prepare_is_idempotent(self):
        scheme = make_mv_scheme(birth_actions=("launch",))
        assert scheme.prepare("launch") == scheme.prepare("launch")


class TestRunner:
    def test_all_six_systems_agree_on_q1(self):
        table = make_table1()
        expected = oracle_evaluate(Q1, table)
        results = run_everywhere(table, Q1, chunk_rows=4)
        assert set(results) == set(SYSTEMS)
        for label, result in results.items():
            assert result.rows == expected.rows, label

    def test_unknown_system(self):
        with pytest.raises(QueryError):
            prepare_system("ORACLE9i", make_table1())


# -- six-way differential on random inputs -------------------------------------------

_users = st.integers(0, 7).map(lambda i: f"u{i}")
_actions = st.sampled_from(["launch", "shop", "fight"])


@st.composite
def random_table(draw):
    n = draw(st.integers(1, 40))
    keys = set()
    for _ in range(n):
        keys.add((draw(_users), draw(st.integers(0, 30 * 86400)),
                  draw(_actions)))
    rows = [(u, t, a, draw(st.sampled_from(["dwarf", "wizard"])),
             draw(st.sampled_from(["AU", "CN", "US"])),
             draw(st.integers(0, 50))) for (u, t, a) in sorted(keys)]
    return ActivityTable.from_rows(make_game_schema(), rows)


@st.composite
def random_query(draw):
    agg = draw(st.sampled_from([
        AggregateSpec("SUM", "gold", "m"),
        AggregateSpec("AVG", "gold", "m"),
        AggregateSpec("COUNT", None, "m"),
        AggregateSpec("USERCOUNT", None, "m"),
    ]))
    birth_cond = draw(st.sampled_from([
        None, eq("role", "dwarf"),
        Between(attr("time"), lit(0), lit(15 * 86400)),
    ]))
    age_cond = draw(st.sampled_from([
        None, eq("action", "shop"),
        Compare(age_ref(), "<", lit(4)),
        Compare(attr("role"), "=", birth("role")),
    ]))
    cohort_by = draw(st.sampled_from([("country",), ("country", "role"),
                                      ("time",)]))
    kwargs = dict(birth_action=draw(_actions), cohort_by=cohort_by,
                  aggregates=(agg,), table="D")
    if birth_cond is not None:
        kwargs["birth_condition"] = birth_cond
    if age_cond is not None:
        kwargs["age_condition"] = age_cond
    return CohortQuery(**kwargs)


@given(table=random_table(), query=random_query())
@settings(max_examples=40, deadline=None)
def test_property_all_schemes_match_oracle(table, query):
    expected = oracle_evaluate(query, table)
    results = run_everywhere(table, query, chunk_rows=7)
    for label, result in results.items():
        assert result.columns == expected.columns, label
        assert _approx(result.rows) == _approx(expected.rows), label


def _approx(rows):
    return [tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows]
