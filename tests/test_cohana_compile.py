"""Unit tests for the vectorized condition compiler (dictionary-code
comparisons, boundary tricks, Birth()/AGE contexts)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.cohana.compile import EvalContext, compile_mask
from repro.cohort import (
    And,
    Between,
    Compare,
    InList,
    Not,
    Or,
    TrueCondition,
    age_ref,
    attr,
    birth,
    eq,
    lit,
)
from repro.storage import GlobalDictionary


class FakeContext(EvalContext):
    """A hand-built context: two string columns with different dicts,
    one int column, per-row birth values and ages."""

    def __init__(self):
        self.country_dict = GlobalDictionary(("AU", "CN", "US"))
        self.role_dict = GlobalDictionary(("dwarf", "wizard"))
        self.data = {
            "country": np.array([0, 1, 2, 1]),     # AU CN US CN
            "role": np.array([0, 1, 1, 0]),        # dwarf wiz wiz dwarf
            "gold": np.array([10, 50, 30, 50]),
        }
        self.births = {
            "country": np.array([0, 1, 1, 2]),     # AU CN CN US
            "role": np.array([0, 0, 1, 0]),
            "gold": np.array([0, 5, 0, 9]),
        }
        self.ages = np.array([1, 2, 3, 4])

    def rows(self):
        return 4

    def plain(self, name):
        return self.data[name]

    def birth_value(self, name):
        return self.births[name]

    def age(self):
        return self.ages

    def dictionary_for(self, name):
        if name == "country":
            return self.country_dict
        if name == "role":
            return self.role_dict
        return None


@pytest.fixture
def ctx():
    return FakeContext()


class TestStringLiteralComparisons:
    def test_equality(self, ctx):
        mask = compile_mask(eq("country", "CN"), ctx)
        assert mask.tolist() == [False, True, False, True]

    def test_equality_absent_value(self, ctx):
        mask = compile_mask(eq("country", "Narnia"), ctx)
        assert mask.tolist() == [False] * 4

    def test_inequality_absent_value(self, ctx):
        cond = Compare(attr("country"), "!=", lit("Narnia"))
        assert compile_mask(cond, ctx).tolist() == [True] * 4

    def test_ordered_boundaries(self, ctx):
        # lexicographic: AU < CN < US; also test absent pivots
        lt = Compare(attr("country"), "<", lit("CN"))
        assert compile_mask(lt, ctx).tolist() == [True, False, False,
                                                  False]
        le = Compare(attr("country"), "<=", lit("CN"))
        assert compile_mask(le, ctx).tolist() == [True, True, False, True]
        gt = Compare(attr("country"), ">", lit("B"))
        assert compile_mask(gt, ctx).tolist() == [False, True, True, True]
        ge = Compare(attr("country"), ">=", lit("CN"))
        assert compile_mask(ge, ctx).tolist() == [False, True, True, True]

    def test_flipped_literal_side(self, ctx):
        cond = Compare(lit("CN"), "=", attr("country"))
        assert compile_mask(cond, ctx).tolist() == [False, True, False,
                                                    True]
        cond = Compare(lit("CN"), "<", attr("country"))  # CN < country
        assert compile_mask(cond, ctx).tolist() == [False, False, True,
                                                    False]

    def test_string_vs_non_string_literal_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            compile_mask(Compare(attr("country"), "=", lit(5)), ctx)


class TestColumnVsColumn:
    def test_same_dictionary_codes(self, ctx):
        cond = Compare(attr("role"), "=", birth("role"))
        assert compile_mask(cond, ctx).tolist() == [True, False, True,
                                                    True]

    def test_cross_dictionary_decodes(self, ctx):
        # country vs Birth(role)? different dicts: decode to strings.
        cond = Compare(attr("country"), "!=", birth("role"))
        assert compile_mask(cond, ctx).tolist() == [True] * 4

    def test_numeric_vs_numeric(self, ctx):
        cond = Compare(attr("gold"), ">", birth("gold"))
        assert compile_mask(cond, ctx).tolist() == [True, True, True,
                                                    True]

    def test_string_vs_numeric_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            compile_mask(Compare(attr("country"), "=", attr("gold")), ctx)


class TestCompositesAndAge:
    def test_age(self, ctx):
        cond = Compare(age_ref(), "<=", lit(2))
        assert compile_mask(cond, ctx).tolist() == [True, True, False,
                                                    False]

    def test_between_numeric(self, ctx):
        cond = Between(attr("gold"), lit(20), lit(50))
        assert compile_mask(cond, ctx).tolist() == [False, True, True,
                                                    True]

    def test_between_strings(self, ctx):
        cond = Between(attr("country"), lit("B"), lit("D"))
        assert compile_mask(cond, ctx).tolist() == [False, True, False,
                                                    True]

    def test_in_list_strings(self, ctx):
        cond = InList(attr("country"), ("AU", "US", "Narnia"))
        assert compile_mask(cond, ctx).tolist() == [True, False, True,
                                                    False]

    def test_in_list_all_absent(self, ctx):
        cond = InList(attr("country"), ("X", "Y"))
        assert compile_mask(cond, ctx).tolist() == [False] * 4

    def test_in_list_numeric(self, ctx):
        cond = InList(attr("gold"), (10, 30))
        assert compile_mask(cond, ctx).tolist() == [True, False, True,
                                                    False]

    def test_and_or_not_true(self, ctx):
        cond = And((eq("country", "CN"),
                    Compare(attr("gold"), ">", lit(40))))
        assert compile_mask(cond, ctx).tolist() == [False, True, False,
                                                    True]
        cond = Or((eq("country", "AU"), eq("country", "US")))
        assert compile_mask(cond, ctx).tolist() == [True, False, True,
                                                    False]
        cond = Not(eq("country", "CN"))
        assert compile_mask(cond, ctx).tolist() == [True, False, True,
                                                    False]
        assert compile_mask(TrueCondition(), ctx).tolist() == [True] * 4

    def test_literal_vs_literal(self, ctx):
        cond = Compare(lit(1), "<", lit(2))
        assert compile_mask(cond, ctx).tolist() == [True] * 4
