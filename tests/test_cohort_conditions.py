"""Unit tests for the condition AST (birth/age selection formulas)."""

import pytest

from repro.errors import QueryError
from repro.cohort import (
    And,
    Between,
    Compare,
    InList,
    Not,
    Or,
    TrueCondition,
    age_ref,
    attr,
    birth,
    conjoin,
    eq,
    lit,
)

ROW = {"country": "Australia", "gold": 50, "role": "assassin"}
BIRTH_ROW = {"country": "Australia", "gold": 0, "role": "dwarf"}


class TestOperands:
    def test_attr_ref(self):
        assert attr("gold").value(ROW, None, None) == 50

    def test_attr_ref_missing(self):
        with pytest.raises(QueryError):
            attr("nope").value(ROW, None, None)

    def test_birth_ref(self):
        assert birth("role").value(ROW, BIRTH_ROW, None) == "dwarf"

    def test_birth_ref_without_birth_row(self):
        with pytest.raises(QueryError):
            birth("role").value(ROW, None, None)

    def test_birth_ref_missing_attr(self):
        with pytest.raises(QueryError):
            birth("nope").value(ROW, BIRTH_ROW, None)

    def test_age_ref(self):
        assert age_ref().value(ROW, None, 3) == 3

    def test_age_ref_without_age(self):
        with pytest.raises(QueryError):
            age_ref().value(ROW, None, None)

    def test_literal(self):
        assert lit(7).value(ROW, None, None) == 7


class TestCompare:
    def test_all_operators(self):
        assert eq("gold", 50).evaluate_row(ROW)
        assert Compare(attr("gold"), "!=", lit(49)).evaluate_row(ROW)
        assert Compare(attr("gold"), "<", lit(51)).evaluate_row(ROW)
        assert Compare(attr("gold"), "<=", lit(50)).evaluate_row(ROW)
        assert Compare(attr("gold"), ">", lit(49)).evaluate_row(ROW)
        assert Compare(attr("gold"), ">=", lit(50)).evaluate_row(ROW)
        assert not eq("gold", 49).evaluate_row(ROW)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Compare(attr("gold"), "<>", lit(1))

    def test_birth_comparison(self):
        cond = Compare(attr("role"), "=", birth("role"))
        assert not cond.evaluate_row(ROW, BIRTH_ROW)
        assert cond.evaluate_row(BIRTH_ROW, BIRTH_ROW)

    def test_age_comparison(self):
        cond = Compare(age_ref(), "<", lit(7))
        assert cond.evaluate_row(ROW, None, 3)
        assert not cond.evaluate_row(ROW, None, 10)

    def test_attribute_sets(self):
        cond = Compare(attr("role"), "=", birth("role"))
        assert cond.plain_attributes() == {"role"}
        assert cond.birth_attributes() == {"role"}
        assert not cond.uses_age()
        assert Compare(age_ref(), "<", lit(1)).uses_age()


class TestComposites:
    def test_between_inclusive(self):
        cond = Between(attr("gold"), lit(50), lit(60))
        assert cond.evaluate_row(ROW)
        assert Between(attr("gold"), lit(40), lit(50)).evaluate_row(ROW)
        assert not Between(attr("gold"), lit(51), lit(60)).evaluate_row(ROW)

    def test_in_list(self):
        cond = InList(attr("country"), ("China", "Australia"))
        assert cond.evaluate_row(ROW)
        assert not InList(attr("country"), ("China",)).evaluate_row(ROW)

    def test_and_or_not(self):
        a = eq("country", "Australia")
        b = eq("gold", 999)
        assert And((a,)).evaluate_row(ROW)
        assert not And((a, b)).evaluate_row(ROW)
        assert Or((a, b)).evaluate_row(ROW)
        assert not Or((b,)).evaluate_row(ROW)
        assert Not(b).evaluate_row(ROW)

    def test_true_condition(self):
        cond = TrueCondition()
        assert cond.evaluate_row(ROW)
        assert cond.plain_attributes() == set()
        assert not cond.uses_age()

    def test_nested_attribute_collection(self):
        cond = And((
            Or((eq("country", "X"), Compare(attr("role"), "=",
                                            birth("role")))),
            Compare(age_ref(), "<", lit(5)),
        ))
        assert cond.plain_attributes() == {"country", "role"}
        assert cond.birth_attributes() == {"role"}
        assert cond.uses_age()
        assert Not(cond).uses_age()

    def test_conjoin(self):
        a = eq("country", "Australia")
        b = eq("gold", 50)
        assert isinstance(conjoin(), TrueCondition)
        assert conjoin(a) is a
        assert conjoin(TrueCondition(), a) is a
        combined = conjoin(a, b)
        assert isinstance(combined, And)
        assert len(combined.parts) == 2
        # nested Ands are flattened
        assert len(conjoin(combined, b).parts) == 3

    def test_str_rendering(self):
        cond = And((eq("country", "Australia"),
                    Between(attr("gold"), lit(1), lit(5))))
        text = str(cond)
        assert "country = 'Australia'" in text
        assert "BETWEEN" in text
        assert "IN" in str(InList(attr("c"), ("x",)))
        assert str(TrueCondition()) == "TRUE"
        assert "Birth(role)" in str(Compare(attr("role"), "=",
                                            birth("role")))
        assert "AGE" in str(Compare(age_ref(), "<", lit(5)))
        assert "NOT" in str(Not(eq("a", 1)))
