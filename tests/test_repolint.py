"""Tests for tools/repolint — the AST-based invariant checker.

Three layers of coverage:

* every rule's seeded fixtures (violation fires, clean is silent,
  suppressed is honoured) — the same battery CI's self-check runs;
* the engine itself — suppression semantics, JSON report shape,
  exit codes, rule selection, parse-error handling;
* the documentation contract — every rule id appears in
  ARCHITECTURE.md's "Static invariants" section, and the live tree
  stays clean under ``--strict``.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repolint import Engine, all_rules  # noqa: E402
from tools.repolint.cli import FIXTURES, list_rules, main  # noqa: E402
from tools.repolint.core import (  # noqa: E402
    SUPPRESSION_RULE_ID,
    dotted_name,
    is_write_mode,
)

RULE_IDS = sorted(rule.id for rule in all_rules())


def _run(case_dir: Path):
    return Engine(all_rules()).run([case_dir], root=case_dir)


def _fired(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


def _suppressed(report, rule_id):
    return [f for f in report.suppressed if f.rule == rule_id]


# ---------------------------------------------------------------------------
# Fixture battery: one violating and one clean tree per rule
# ---------------------------------------------------------------------------


class TestFixtureBattery:
    def test_every_rule_ships_fixtures(self):
        for rule_id in RULE_IDS:
            assert (FIXTURES / rule_id / "violation").is_dir(), rule_id
            assert (FIXTURES / rule_id / "clean").is_dir(), rule_id

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_violation_fires(self, rule_id):
        report = _run(FIXTURES / rule_id / "violation")
        assert not report.parse_errors
        findings = _fired(report, rule_id)
        assert findings, f"{rule_id} silent on its seeded violation"
        first = findings[0]
        assert first.line >= 1 and first.message

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_is_silent(self, rule_id):
        report = _run(FIXTURES / rule_id / "clean")
        assert not report.parse_errors
        assert _fired(report, rule_id) == []

    @pytest.mark.parametrize(
        "rule_id",
        [r for r in RULE_IDS
         if (FIXTURES / r / "suppressed").is_dir()])
    def test_suppression_honoured(self, rule_id):
        report = _run(FIXTURES / rule_id / "suppressed")
        assert _fired(report, rule_id) == []
        hits = _suppressed(report, rule_id)
        assert hits, f"{rule_id} suppressed fixture no longer violates"
        assert all(f.reason for f in hits)

    def test_self_check_passes(self, capsys):
        assert main(["--self-check"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert f"self-check {rule_id}: ok" in out


# ---------------------------------------------------------------------------
# Suppression semantics
# ---------------------------------------------------------------------------


class TestSuppressions:
    def _lint_source(self, tmp_path, source,
                     name="src/repro/service/fingerprint.py"):
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        return _run(tmp_path)

    def test_reasonless_suppression_suppresses_nothing(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            "import time  # repolint: ignore[determinism]\n")
        assert _fired(report, "determinism"), \
            "finding should survive a reasonless suppression"
        meta = _fired(report, SUPPRESSION_RULE_ID)
        assert meta and "reason" in meta[0].message

    def test_reasoned_suppression_takes(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            "import time  # repolint: ignore[determinism] -- profiling\n")
        assert not _fired(report, "determinism")
        assert not _fired(report, SUPPRESSION_RULE_ID)
        hits = _suppressed(report, "determinism")
        assert hits and hits[0].reason == "profiling"

    def test_comment_line_above_covers_next_line(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            "# repolint: ignore[determinism] -- profiling\n"
            "import time\n")
        assert not _fired(report, "determinism")
        assert _suppressed(report, "determinism")

    def test_suppression_is_rule_specific(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            "import time  # repolint: ignore[kernel-purity] -- nope\n")
        assert _fired(report, "determinism"), \
            "a suppression for another rule must not leak"


# ---------------------------------------------------------------------------
# Report shape and exit codes
# ---------------------------------------------------------------------------


class TestReportAndCli:
    def test_json_shape(self, tmp_path):
        rules = all_rules()
        report = Engine(rules).run(
            [FIXTURES / "determinism" / "violation"],
            root=FIXTURES / "determinism" / "violation")
        payload = report.to_json(rules)
        assert payload["version"] == 1
        assert set(payload) == {"version", "files_scanned", "rules",
                                "findings", "suppressed", "counts"}
        assert payload["files_scanned"] == report.files_scanned >= 1
        assert {r["id"] for r in payload["rules"]} == set(RULE_IDS)
        for entry in payload["rules"]:
            assert set(entry) == {"id", "severity", "contract", "paths"}
        for finding in payload["findings"]:
            assert {"rule", "path", "line", "col",
                    "message", "severity"} <= set(finding)
        assert payload["counts"]["error"] == len(report.errors)

    def test_json_file_output(self, tmp_path):
        out = tmp_path / "report.json"
        code = main([str(FIXTURES / "determinism" / "violation"),
                     "--root", str(FIXTURES / "determinism" / "violation"),
                     "--json", str(out)])
        assert code == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert any(f["rule"] == "determinism"
                   for f in payload["findings"])

    def test_exit_codes(self, tmp_path):
        clean = FIXTURES / "determinism" / "clean"
        dirty = FIXTURES / "determinism" / "violation"
        assert main([str(clean), "--root", str(clean)]) == 0
        assert main([str(dirty), "--root", str(dirty)]) == 1
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        assert main([str(bad), "--root", str(tmp_path)]) == 2

    def test_select_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            main(["--select", "no-such-rule", "--list-rules"])

    def test_select_narrows_battery(self, tmp_path):
        target = tmp_path / "src" / "repro" / "storage" / "rogue.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import os\n\n\ndef sneak(tmp, path):\n"
            "    os.replace(tmp, path)\n", encoding="utf-8")
        code = main([str(tmp_path), "--root", str(tmp_path),
                     "--select", "determinism"])
        assert code == 0, "atomic-publish must not run when deselected"

    def test_live_tree_is_clean_under_strict(self):
        code = main([str(REPO_ROOT / "src"),
                     "--root", str(REPO_ROOT), "--strict"])
        assert code == 0, \
            "src/ must stay repolint-clean; fix or suppress with a reason"


# ---------------------------------------------------------------------------
# Rules <-> documentation contract
# ---------------------------------------------------------------------------


class TestDocumentationContract:
    def test_list_rules_names_every_rule(self):
        table = list_rules(all_rules())
        for rule_id in RULE_IDS:
            assert rule_id in table
        for rule in all_rules():
            assert rule.contract, f"{rule.id} has no contract line"
            assert rule.contract in table

    def test_architecture_doc_documents_every_rule(self):
        text = (REPO_ROOT / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        assert "## Static invariants" in text
        section = text.split("## Static invariants", 1)[1]
        for rule_id in RULE_IDS:
            assert f"`{rule_id}`" in section, \
                f"{rule_id} missing from ARCHITECTURE.md rule table"

    def test_rule_ids_are_stable(self):
        # Renaming an id silently orphans suppression comments: this
        # pin makes any change a deliberate, reviewed act.
        assert RULE_IDS == [
            "atomic-publish",
            "crash-seam",
            "determinism",
            "executor-lifecycle",
            "fsync-before-replace",
            "kernel-purity",
            "lock-discipline",
            "lock-order",
            "suppression-reason",
        ]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


class TestHelpers:
    def test_dotted_name(self):
        import ast
        expr = ast.parse("os.path.join", mode="eval").body
        assert dotted_name(expr) == "os.path.join"
        call = ast.parse("x[0].replace", mode="eval").body
        assert dotted_name(call) is None

    def test_is_write_mode(self):
        import ast

        def call(src):
            return ast.parse(src, mode="eval").body

        assert is_write_mode(call("open(p, 'w')"))
        assert is_write_mode(call("open(p, mode='r+b')"))
        assert not is_write_mode(call("open(p)"))
        assert not is_write_mode(call("open(p, 'rb')"))
        assert is_write_mode(call("open(p, m)")), \
            "unknown mode must count as writing"
