"""Shared test helpers: the paper's Table 1 example.

Importable as ``from helpers import ...`` (pytest puts ``tests/`` on
``sys.path`` when collecting). Lives outside ``conftest.py`` so the name
never collides with other conftest modules (``benchmarks/`` has its own).
"""

from __future__ import annotations

from repro.schema import ActivitySchema, LogicalType
from repro.table import ActivityTable

#: The paper's Table 1 (player / time / action / role / country / gold).
TABLE1_ROWS = [
    ("001", "2013/05/19:1000", "launch", "dwarf", "Australia", 0),
    ("001", "2013/05/20:0800", "shop", "dwarf", "Australia", 50),
    ("001", "2013/05/20:1400", "shop", "dwarf", "Australia", 100),
    ("001", "2013/05/21:1400", "shop", "assassin", "Australia", 50),
    ("001", "2013/05/22:0900", "fight", "assassin", "Australia", 0),
    ("002", "2013/05/20:0900", "launch", "wizard", "United States", 0),
    ("002", "2013/05/21:1500", "shop", "wizard", "United States", 30),
    ("002", "2013/05/22:1700", "shop", "wizard", "United States", 40),
    ("003", "2013/05/20:1000", "launch", "bandit", "China", 0),
    ("003", "2013/05/21:1000", "fight", "bandit", "China", 0),
]


def make_game_schema() -> ActivitySchema:
    """The running-example schema used throughout the paper."""
    return ActivitySchema.build(
        user="player", time="time", action="action",
        dimensions={"role": LogicalType.STRING,
                    "country": LogicalType.STRING},
        measures={"gold": LogicalType.INT},
    )


def make_table1() -> ActivityTable:
    """The paper's Table 1 as a sorted activity table."""
    return ActivityTable.from_rows(make_game_schema(), TABLE1_ROWS)
