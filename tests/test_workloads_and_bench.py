"""Tests for the Q1-Q8 workload texts and the bench harness."""


from repro.bench import Report, dataset, time_call
from repro.bench.experiments import TABLE, ablations, cohana_engine, \
    fig07_storage, prepared_system
from repro.datagen import game_schema
from repro.workloads import (
    MAIN_QUERIES,
    bind,
    day_offset,
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    q8,
)


class TestWorkloadQueries:
    def test_all_main_queries_bind(self):
        schema = game_schema()
        for name, fn in MAIN_QUERIES.items():
            query = bind(fn("D"), schema)
            assert query.table == "D", name

    def test_q1_q2_use_launch_and_usercount(self):
        schema = game_schema()
        for text in (q1("D"), q2("D")):
            query = bind(text, schema)
            assert query.birth_action == "launch"
            assert query.aggregates[0].func == "USERCOUNT"

    def test_q3_q4_use_shop_and_avg(self):
        schema = game_schema()
        for text in (q3("D"), q4("D")):
            query = bind(text, schema)
            assert query.birth_action == "shop"
            assert query.aggregates[0].func == "AVG"
            assert query.age_condition.plain_attributes() >= {"action"}

    def test_q4_has_birth_country_filter(self):
        query = bind(q4("D"), game_schema())
        assert "country" in query.age_condition.birth_attributes()

    def test_q5_q6_parameterized_range(self):
        schema = game_schema()
        d2 = day_offset("2013-05-19", 10)
        assert d2 == "2013-05-29"
        for text in (q5("2013-05-19", d2, "D"), q6("2013-05-19", d2,
                                                   "D")):
            query = bind(text, schema)
            assert query.birth_condition.plain_attributes() == {"time"}

    def test_q7_q8_age_cutoff(self):
        schema = game_schema()
        for text in (q7(5, "D"), q8(5, "D")):
            query = bind(text, schema)
            assert query.age_condition.uses_age()


class TestHarness:
    def test_dataset_cached_and_scaled(self):
        a = dataset(1)
        assert dataset(1) is a
        b = dataset(2)
        assert len(b) == 2 * len(a)
        assert dataset(2) is b

    def test_time_call_positive(self):
        assert time_call(lambda: sum(range(100)), repeat=2) >= 0

    def test_series_and_report(self):
        report = Report(title="t", x_label="scale", y_label="seconds")
        s = report.series_named("A")
        s.add(1, 0.5)
        s.add(2, 1.0)
        report.series_named("B").add(1, 2)
        assert report.series_named("A") is s
        assert report.xs() == [1, 2]
        assert s.y_at(2) == 1.0
        assert s.y_at(99) is None
        text = report.to_text()
        assert "== t ==" in text
        assert "A" in text and "B" in text
        assert "-" in text  # missing B@2 rendered as dash


class TestExperimentsSmoke:
    """Tiny-scale smoke runs of the figure experiments."""

    def test_cohana_engine_cached(self):
        assert cohana_engine(1, 512) is cohana_engine(1, 512)

    def test_prepared_system_cached(self):
        assert prepared_system("COHANA", 1) is prepared_system("COHANA",
                                                               1)

    def test_fig07_report_shape(self):
        report = fig07_storage(scales=(1,), chunk_rows=(256, 4096))
        assert len(report.series) == 2
        small = report.series_named("chunk=256").y_at(1)
        big = report.series_named("chunk=4096").y_at(1)
        assert small is not None and big is not None
        # Figure 7's claim: larger chunks never compress better.
        assert big >= small

    def test_ablation_report(self):
        report = ablations(scale=1, chunk_rows=512, repeat=1)
        labels = [s.label for s in report.series]
        assert "vectorized" in labels
        assert any("iterator" in lbl for lbl in labels)

    def test_main_queries_run_on_benchmark_dataset(self):
        engine = cohana_engine(1, 4096)
        for name, fn in MAIN_QUERIES.items():
            result = engine.query(fn(TABLE))
            assert len(result.rows) > 0, name
