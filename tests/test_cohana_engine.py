"""COHANA engine tests: both executors vs the oracle, pruning, planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError
from repro.cohana import CohanaEngine, extract_time_bounds
from repro.cohort import (
    AggregateSpec,
    Between,
    CohortQuery,
    Compare,
    age_ref,
    attr,
    birth,
    conjoin,
    eq,
    evaluate as oracle_evaluate,
    lit,
)
from repro.table import ActivityTable

from helpers import make_game_schema

Q1_TEXT = """
SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
FROM D
BIRTH FROM action = "launch" AND role = "dwarf"
AGE ACTIVITIES IN action = "shop"
COHORT BY country
"""


@pytest.fixture
def engine(table1):
    eng = CohanaEngine()
    eng.create_table("D", table1, target_chunk_rows=4)
    return eng


class TestEngineBasics:
    def test_q1_text_query(self, engine, table1):
        result = engine.query(Q1_TEXT)
        assert result.rows == [
            ("Australia", 1, 1, 50),
            ("Australia", 1, 2, 100),
            ("Australia", 1, 3, 50),
        ]

    def test_iterator_executor_matches(self, engine):
        vec = engine.query(Q1_TEXT, executor="vectorized")
        it = engine.query(Q1_TEXT, executor="iterator")
        assert vec.rows == it.rows
        assert vec.columns == it.columns

    def test_unknown_executor(self, engine):
        with pytest.raises(CatalogError, match="executor"):
            engine.query(Q1_TEXT, executor="quantum")

    def test_catalog(self, engine, table1):
        assert engine.tables() == ["D"]
        with pytest.raises(CatalogError):
            engine.create_table("D", table1)
        with pytest.raises(CatalogError):
            engine.table("missing")
        engine.drop_table("D")
        assert engine.tables() == []

    def test_create_table_replace(self, engine, table1):
        # Without replace, re-registering stays an error (test above);
        # with replace=True the registration is overwritten in place.
        first = engine.table("D")
        replaced = engine.create_table("D", table1, target_chunk_rows=2,
                                       replace=True)
        assert engine.table("D") is replaced
        assert replaced is not first
        assert replaced.n_chunks > first.n_chunks

    def test_register_replace(self, engine, table1):
        compressed = engine.table("D")
        with pytest.raises(CatalogError):
            engine.register("D", compressed)
        engine.register("D", compressed, replace=True)
        assert engine.table("D") is compressed

    def test_save_load_roundtrip(self, engine, tmp_path):
        path = tmp_path / "d.cohana"
        engine.save_table("D", path)
        engine2 = CohanaEngine()
        engine2.load_table("D", path)
        assert engine2.query(Q1_TEXT).rows == engine.query(Q1_TEXT).rows

    def test_explain_mentions_plan_pieces(self, engine):
        text = engine.explain(Q1_TEXT)
        assert "CohortAggregate" in text
        assert "TableScan" in text
        assert "pushed below age selection" in text

    def test_unknown_birth_action_returns_empty(self, engine):
        result = engine.query(
            'SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
            'BIRTH FROM action = "no_such" COHORT BY country')
        assert result.rows == []

    def test_query_object_api(self, engine, table1):
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("USERCOUNT", None, "retained"),),
            table="D",
        )
        result = engine.query(query)
        assert result.rows == oracle_evaluate(query, table1).rows


class TestStatsAndPruning:
    def test_chunk_pruning_by_action(self, game_schema):
        # Two chunks; only one contains the birth action.
        rows = [("a", "2013-05-19", "launch", "d", "AU", 0),
                ("a", "2013-05-20", "shop", "d", "AU", 5),
                ("b", "2013-05-19", "fight", "d", "CN", 0),
                ("b", "2013-05-20", "fight", "d", "CN", 0)]
        table = ActivityTable.from_rows(game_schema, rows)
        eng = CohanaEngine()
        eng.create_table("D", table, target_chunk_rows=2)
        assert eng.table("D").n_chunks == 2
        _, stats = eng.query_with_stats(
            'SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        assert stats.chunks_pruned == 1
        assert stats.chunks_scanned == 1

    def test_pruning_disabled_scans_everything(self, game_schema):
        rows = [("a", "2013-05-19", "launch", "d", "AU", 0),
                ("b", "2013-05-19", "fight", "d", "CN", 0)]
        table = ActivityTable.from_rows(game_schema, rows)
        eng = CohanaEngine()
        eng.create_table("D", table, target_chunk_rows=1)
        _, stats = eng.query_with_stats(
            'SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" COHORT BY country', prune=False)
        assert stats.chunks_pruned == 0
        assert stats.chunks_scanned == 2

    def test_time_range_pruning(self, game_schema):
        rows = [("a", "2013-05-19", "launch", "d", "AU", 0),
                ("b", "2013-06-19", "launch", "d", "CN", 0),
                ("b", "2013-06-20", "shop", "d", "CN", 9)]
        table = ActivityTable.from_rows(game_schema, rows)
        eng = CohanaEngine()
        eng.create_table("D", table, target_chunk_rows=1)
        _, stats = eng.query_with_stats(
            'SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" AND '
            'time BETWEEN "2013-06-01" AND "2013-06-30" '
            'COHORT BY country')
        assert stats.chunks_pruned >= 1

    def test_skipping_unqualified_users(self, engine):
        # scan_mode="decoded" disables the coded-domain chunk pruning so
        # every user is actually visited (and then skipped per user);
        # see test_zone_pruning_hides_unqualified_users for the default.
        _, stats = engine.query_with_stats(Q1_TEXT, scan_mode="decoded")
        assert stats.users_seen == 3
        assert stats.users_qualified == 1

    def test_zone_pruning_hides_unqualified_users(self, engine):
        # Default (auto) mode: role = "dwarf" prunes the chunk whose
        # role dictionary lacks "dwarf", so its users are never seen —
        # with identical results.
        decoded, dstats = engine.query_with_stats(Q1_TEXT,
                                                  scan_mode="decoded")
        auto, stats = engine.query_with_stats(Q1_TEXT)
        assert auto.rows == decoded.rows
        assert stats.chunks_pruned_zone > 0
        assert stats.users_seen < dstats.users_seen
        assert stats.users_qualified == dstats.users_qualified

    def test_pushdown_flag_same_result(self, engine):
        for executor in ("vectorized", "iterator"):
            with_pd = engine.query(Q1_TEXT, executor=executor,
                                   pushdown=True)
            without_pd = engine.query(Q1_TEXT, executor=executor,
                                      pushdown=False)
            assert with_pd.rows == without_pd.rows


class TestPlanner:
    def test_time_bounds_between(self):
        cond = Between(attr("time"), lit(10), lit(20))
        assert extract_time_bounds(cond, "time") == (10, 20)

    def test_time_bounds_comparisons(self):
        cond = conjoin(Compare(attr("time"), ">=", lit(5)),
                       Compare(attr("time"), "<", lit(9)))
        assert extract_time_bounds(cond, "time") == (5, 9)

    def test_time_bounds_flipped_literal(self):
        cond = Compare(lit(5), "<=", attr("time"))
        assert extract_time_bounds(cond, "time") == (5, None)

    def test_time_bounds_equality(self):
        assert extract_time_bounds(eq("time", 7), "time") == (7, 7)

    def test_time_bounds_other_column_ignored(self):
        assert extract_time_bounds(eq("gold", 7), "time") == (None, None)

    def test_time_bounds_disjunction_ignored(self):
        from repro.cohort import Or
        cond = Or((eq("time", 5), eq("time", 9)))
        assert extract_time_bounds(cond, "time") == (None, None)

    def test_required_columns(self, engine):
        plan = engine.plan(Q1_TEXT)
        assert set(plan.columns) == {"time", "action", "role", "country",
                                     "gold"}

    def test_required_columns_minimal(self, engine):
        plan = engine.plan(
            'SELECT country, COHORTSIZE, AGE, UserCount() FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        assert set(plan.columns) == {"time", "action", "country"}


# -- differential property test: engines vs oracle ------------------------------

_users = st.integers(min_value=0, max_value=10).map(lambda i: f"u{i:02d}")
_actions = st.sampled_from(["launch", "shop", "fight"])
_countries = st.sampled_from(["AU", "CN", "US"])
_roles = st.sampled_from(["dwarf", "wizard"])
_times = st.integers(min_value=0, max_value=40 * 86400)


@st.composite
def random_table(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    keys = set()
    for _ in range(n):
        keys.add((draw(_users), draw(_times), draw(_actions)))
    rows = [(u, t, a, draw(_roles), draw(_countries),
             draw(st.integers(0, 100))) for (u, t, a) in sorted(keys)]
    return ActivityTable.from_rows(make_game_schema(), rows)


@st.composite
def random_query(draw):
    birth_action = draw(_actions)
    birth_cond = draw(st.sampled_from([
        None,
        eq("role", "dwarf"),
        Between(attr("time"), lit(0), lit(20 * 86400)),
        conjoin(eq("role", "wizard"), eq("country", "CN")),
    ]))
    age_cond = draw(st.sampled_from([
        None,
        eq("action", "shop"),
        Compare(age_ref(), "<", lit(5)),
        Compare(attr("country"), "=", birth("country")),
        conjoin(eq("action", "shop"),
                Compare(attr("role"), "=", birth("role"))),
    ]))
    agg = draw(st.sampled_from([
        AggregateSpec("SUM", "gold", "m"),
        AggregateSpec("AVG", "gold", "m"),
        AggregateSpec("COUNT", None, "m"),
        AggregateSpec("MIN", "gold", "m"),
        AggregateSpec("MAX", "gold", "m"),
        AggregateSpec("USERCOUNT", None, "m"),
    ]))
    cohort_by = draw(st.sampled_from([("country",), ("role",),
                                      ("country", "role"), ("time",)]))
    kwargs = dict(birth_action=birth_action, cohort_by=cohort_by,
                  aggregates=(agg,), table="D")
    if birth_cond is not None:
        kwargs["birth_condition"] = birth_cond
    if age_cond is not None:
        kwargs["age_condition"] = age_cond
    return CohortQuery(**kwargs)


@given(table=random_table(), query=random_query(),
       chunk_rows=st.sampled_from([1, 3, 7, 1000]))
@settings(max_examples=120, deadline=None)
def test_property_engines_match_oracle(table, query, chunk_rows):
    expected = oracle_evaluate(query, table)
    eng = CohanaEngine()
    eng.create_table("D", table, target_chunk_rows=chunk_rows)
    for executor in ("vectorized", "iterator"):
        got = eng.query(query, executor=executor)
        assert got.columns == expected.columns
        assert _approx(got.rows) == _approx(expected.rows), (
            f"{executor} mismatch for {query}")


@given(table=random_table(), query=random_query())
@settings(max_examples=40, deadline=None)
def test_property_pruning_and_pushdown_never_change_results(table, query):
    eng = CohanaEngine()
    eng.create_table("D", table, target_chunk_rows=5)
    baseline = eng.query(query, prune=False, pushdown=False)
    for prune in (False, True):
        for pushdown in (False, True):
            got = eng.query(query, prune=prune, pushdown=pushdown)
            assert _approx(got.rows) == _approx(baseline.rows)


def _approx(rows):
    out = []
    for row in rows:
        out.append(tuple(round(v, 9) if isinstance(v, float) else v
                         for v in row))
    return out
