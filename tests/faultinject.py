"""Fault injection for the shard publish path.

The storage layer compiles *crash points* into its publish discipline
(:func:`repro.storage.sharded.crash_point`: after the shard write,
after the fsynced temp-manifest write, immediately before the atomic
``os.replace``, and after the publish) and routes its dangerous
syscalls through patchable module aliases (``_os_replace``,
``_os_fsync``). This module turns those seams into a harness:

* :class:`FaultInjector` — a context manager that installs a crash
  hook and raises :class:`InjectedCrash` at a chosen point, optionally
  after first **tearing** the just-written file (truncating it, the
  on-disk state a real power cut can leave behind when the write was
  never fsynced);
* :class:`InjectedCrash` — derives from ``BaseException``, not
  ``Exception``, so no ``except ReproError``/``except Exception`` in
  production code can swallow the simulated power cut — exactly like a
  real one, it unwinds everything.

The crash-consistency suite (``test_crash_consistency.py``)
parameterizes over :data:`repro.storage.sharded.CRASH_POINTS` — every
point added to the publish path automatically grows the test matrix.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.storage import sharded


class InjectedCrash(BaseException):
    """A simulated power cut at a named crash point."""

    def __init__(self, point: str, path: Path | None):
        super().__init__(f"injected crash at {point!r}"
                         + (f" ({path})" if path else ""))
        self.point = point
        self.path = path


class FaultInjector:
    """Install a crash hook for the duration of a ``with`` block.

    Args:
        crash_at: the crash point to die at (``None`` observes only —
            the injector then just records every point that fires).
        skip: let this many firings of ``crash_at`` pass before
            crashing — for paths that announce one point several times.
        tear_bytes: before crashing, truncate the file the crash point
            announced to this many bytes, simulating a write the crash
            interrupted mid-flight.

    Attributes:
        fired: every ``(point, path)`` announced while installed.
        crashed: whether the injected crash actually fired.
    """

    def __init__(self, crash_at: str | None = None, skip: int = 0,
                 tear_bytes: int | None = None):
        self.crash_at = crash_at
        self.skip = skip
        self.tear_bytes = tear_bytes
        self.fired: list[tuple[str, Path | None]] = []
        self.crashed = False

    def _hook(self, point: str, path: Path | None) -> None:
        self.fired.append((point, path))
        if self.crashed or point != self.crash_at:
            return
        if self.skip > 0:
            self.skip -= 1
            return
        self.crashed = True
        if (self.tear_bytes is not None and path is not None
                and os.path.exists(path)):
            with open(path, "r+b") as f:
                f.truncate(self.tear_bytes)
        raise InjectedCrash(point, path)

    def points_fired(self) -> list[str]:
        return [point for point, _path in self.fired]

    def __enter__(self) -> "FaultInjector":
        sharded.set_crash_hook(self._hook)
        return self

    def __exit__(self, *exc) -> bool:
        sharded.set_crash_hook(None)
        return False
