"""Unit & property tests for fixed-width bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.storage import bits_needed, pack


class TestBitsNeeded:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9),
        (2**40, 41), (2**63 - 1, 63),
    ])
    def test_values(self, value, expected):
        assert bits_needed(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            bits_needed(-1)


class TestPack:
    def test_roundtrip_simple(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        packed = pack(values)
        assert packed.unpack().tolist() == values

    def test_inferred_width(self):
        assert pack([0, 7]).bit_width == 3
        assert pack([0]).bit_width == 1
        assert pack([]).bit_width == 1

    def test_explicit_width(self):
        packed = pack([1, 2, 3], bit_width=10)
        assert packed.bit_width == 10
        assert packed.values_per_word == 6
        assert packed.unpack().tolist() == [1, 2, 3]

    def test_values_do_not_span_words(self):
        # 20-bit values: 3 per word, upper 4 bits of each word unused.
        packed = pack(list(range(7)), bit_width=20)
        assert packed.values_per_word == 3
        assert len(packed.words) == 3

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            pack([-1])

    def test_too_wide_rejected(self):
        with pytest.raises(EncodingError):
            pack([8], bit_width=3)

    def test_bad_width_rejected(self):
        with pytest.raises(EncodingError):
            pack([1], bit_width=0)
        with pytest.raises(EncodingError):
            pack([1], bit_width=65)

    def test_random_access(self):
        values = [10, 20, 30, 40, 50]
        packed = pack(values, bit_width=6)
        for i, v in enumerate(values):
            assert packed.get(i) == v

    def test_random_access_out_of_range(self):
        packed = pack([1, 2, 3])
        with pytest.raises(IndexError):
            packed.get(3)
        with pytest.raises(IndexError):
            packed.get(-1)

    def test_get_range(self):
        values = list(range(100))
        packed = pack(values, bit_width=7)
        assert packed.get_range(10, 20).tolist() == values[10:20]
        assert packed.get_range(0, 0).tolist() == []
        assert packed.get_range(99, 100).tolist() == [99]

    def test_get_range_bounds(self):
        packed = pack([1, 2, 3])
        with pytest.raises(IndexError):
            packed.get_range(0, 4)
        with pytest.raises(IndexError):
            packed.get_range(2, 1)

    def test_empty(self):
        packed = pack([])
        assert len(packed) == 0
        assert packed.unpack().tolist() == []
        assert packed.nbytes == 0

    def test_width_64(self):
        big = 2**63 + 5
        packed = pack(np.array([big], dtype=np.uint64).astype(np.int64),
                      bit_width=64) if False else pack([2**62], bit_width=64)
        assert packed.get(0) == 2**62

    def test_nbytes_shrinks_with_width(self):
        wide = pack(list(range(64)), bit_width=32)
        narrow = pack(list(range(64)), bit_width=8)
        assert narrow.nbytes < wide.nbytes


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=300))
@settings(max_examples=100, deadline=None)
def test_property_roundtrip(values):
    packed = pack(values)
    assert packed.unpack().tolist() == values


@given(st.lists(st.integers(min_value=0, max_value=2**17 - 1),
                min_size=1, max_size=200),
       st.data())
@settings(max_examples=50, deadline=None)
def test_property_random_access_matches_unpack(values, data):
    packed = pack(values, bit_width=17)
    i = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    assert packed.get(i) == values[i]


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=500))
@settings(max_examples=30, deadline=None)
def test_property_one_bit_packing(bits):
    packed = pack(bits, bit_width=1)
    assert packed.values_per_word == 64
    assert packed.unpack().tolist() == bits
