"""Unit tests for repro.table: activity tables, builder, CSV round-trip."""

import numpy as np
import pytest

from repro.errors import PrimaryKeyError, SchemaError
from repro.schema import parse_timestamp
from repro.table import (
    ActivityTable,
    ActivityTableBuilder,
    read_csv,
    write_csv,
)

from helpers import TABLE1_ROWS, make_game_schema


class TestConstruction:
    def test_from_rows_matches_table1(self, table1):
        assert len(table1) == 10
        assert table1.schema.names()[0] == "player"

    def test_from_row_dicts(self, game_schema):
        rows = [dict(player="x", time="2013-05-19", action="launch",
                     role="dwarf", country="China", gold=1)]
        table = ActivityTable.from_rows(game_schema, rows)
        assert table.row(0)["gold"] == 1

    def test_ragged_row_rejected(self, game_schema):
        with pytest.raises(SchemaError):
            ActivityTable.from_rows(game_schema, [("x", "2013-05-19")])

    def test_missing_column_rejected(self, game_schema):
        with pytest.raises(SchemaError, match="missing column"):
            ActivityTable(game_schema, {"player": ["a"]})

    def test_extra_column_rejected(self, game_schema, table1):
        cols = {n: table1.column(n) for n in game_schema.names()}
        cols["bogus"] = np.zeros(10)
        with pytest.raises(SchemaError, match="not in schema"):
            ActivityTable(game_schema, cols)

    def test_length_mismatch_rejected(self, game_schema, table1):
        cols = {n: table1.column(n) for n in game_schema.names()}
        cols["gold"] = np.zeros(3, dtype=np.int64)
        with pytest.raises(SchemaError, match="expected"):
            ActivityTable(game_schema, cols)

    def test_non_string_user_rejected(self, game_schema):
        cols = dict(player=np.array([1], dtype=np.int64),
                    time=[0], action=["a"], role=["r"], country=["c"],
                    gold=[0])
        with pytest.raises(SchemaError):
            ActivityTable(game_schema, cols)

    def test_empty(self, game_schema):
        table = ActivityTable.empty(game_schema)
        assert len(table) == 0
        assert table.to_rows() == []
        assert table.is_sorted_by_primary_key()


class TestAccessors:
    def test_row_values(self, table1):
        row = table1.row(0)
        assert row["player"] == "001"
        assert row["action"] == "launch"
        assert row["time"] == parse_timestamp("2013/05/19:1000")

    def test_iter_rows_count(self, table1):
        assert sum(1 for _ in table1.iter_rows()) == 10

    def test_column_types(self, table1):
        assert table1.times.dtype == np.int64
        assert table1.column("gold").dtype == np.int64
        assert table1.users.dtype == object

    def test_unknown_column(self, table1):
        with pytest.raises(SchemaError):
            table1.column("nope")

    def test_take_and_slice(self, table1):
        taken = table1.take(np.array([0, 2]))
        assert len(taken) == 2
        assert taken.row(1)["gold"] == 100
        sliced = table1.slice(0, 3)
        assert len(sliced) == 3

    def test_concat(self, table1):
        both = table1.slice(0, 4).concat(table1.slice(4, 10))
        assert both.to_rows() == table1.to_rows()

    def test_concat_schema_mismatch(self, table1):
        other_schema = make_game_schema()
        other = ActivityTable.empty(other_schema)
        # Same schema value: concat works even with a distinct instance.
        assert len(table1.concat(other)) == 10

    def test_distinct_users(self, table1):
        assert table1.distinct_users() == ["001", "002", "003"]

    def test_repr(self, table1):
        assert "10 rows" in repr(table1)


class TestPrimaryKey:
    def test_table1_valid(self, table1):
        table1.check_primary_key()  # should not raise

    def test_duplicate_detected(self, game_schema):
        row = ("x", "2013-05-19", "launch", "dwarf", "China", 0)
        table = ActivityTable.from_rows(game_schema, [row, row])
        with pytest.raises(PrimaryKeyError):
            table.check_primary_key()

    def test_same_time_different_action_ok(self, game_schema):
        rows = [("x", "2013-05-19", "launch", "d", "C", 0),
                ("x", "2013-05-19", "shop", "d", "C", 5)]
        table = ActivityTable.from_rows(game_schema, rows)
        table.check_primary_key()

    def test_sort_produces_clustering_and_time_order(self, game_schema):
        rows = [
            ("b", "2013-05-20", "launch", "d", "C", 0),
            ("a", "2013-05-21", "shop", "d", "C", 1),
            ("a", "2013-05-19", "launch", "d", "C", 0),
            ("b", "2013-05-22", "shop", "d", "C", 2),
        ]
        table = ActivityTable.from_rows(game_schema, rows)
        assert not table.is_sorted_by_primary_key()
        sorted_table = table.sorted_by_primary_key()
        assert sorted_table.is_sorted_by_primary_key()
        assert sorted_table.users.tolist() == ["a", "a", "b", "b"]
        times = sorted_table.times
        assert times[0] < times[1] and times[2] < times[3]

    def test_user_blocks(self, table1):
        blocks = list(table1.user_blocks())
        assert blocks == [("001", 0, 5), ("002", 5, 8), ("003", 8, 10)]

    def test_equality(self, table1):
        assert table1 == make_table_copy(table1)
        assert table1 != table1.slice(0, 5)
        assert table1.__eq__(42) is NotImplemented


def make_table_copy(table):
    return ActivityTable.from_rows(table.schema, table.to_rows())


class TestBuilder:
    def test_append_and_build(self, game_schema):
        b = ActivityTableBuilder(game_schema)
        b.append(player="002", time="2013-05-20", action="launch",
                 role="wizard", country="US", gold=0)
        b.append(player="001", time="2013-05-19", action="launch",
                 role="dwarf", country="AU", gold=0)
        assert len(b) == 2
        table = b.build()
        assert table.users.tolist() == ["001", "002"]  # sorted

    def test_append_row(self, game_schema):
        b = ActivityTableBuilder(game_schema)
        b.append_row(TABLE1_ROWS[0])
        assert b.build().row(0)["player"] == "001"

    def test_append_row_wrong_arity(self, game_schema):
        with pytest.raises(SchemaError):
            ActivityTableBuilder(game_schema).append_row(("just", "two"))

    def test_missing_column_rejected(self, game_schema):
        b = ActivityTableBuilder(game_schema)
        with pytest.raises(SchemaError, match="missing"):
            b.append(player="001", time="2013-05-19", action="launch")

    def test_unknown_column_rejected(self, game_schema):
        b = ActivityTableBuilder(game_schema)
        with pytest.raises(SchemaError, match="unknown"):
            b.append(player="001", time="2013-05-19", action="launch",
                     role="r", country="c", gold=0, bogus=1)

    def test_duplicate_pk_rejected_on_build(self, game_schema):
        b = ActivityTableBuilder(game_schema)
        for _ in range(2):
            b.append(player="001", time="2013-05-19", action="launch",
                     role="r", country="c", gold=0)
        with pytest.raises(PrimaryKeyError):
            b.build()
        # but tolerated when checking is off
        assert len(b.build(check_primary_key=False)) == 2


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path, table1):
        path = tmp_path / "t.csv"
        write_csv(table1, path)
        back = read_csv(path, table1.schema)
        assert back == table1

    def test_header_order_insensitive(self, tmp_path, game_schema):
        path = tmp_path / "t.csv"
        path.write_text(
            "gold,country,role,action,time,player\n"
            "5,China,bandit,launch,2013-05-19,003\n")
        table = read_csv(path, game_schema)
        assert table.row(0)["player"] == "003"
        assert table.row(0)["gold"] == 5

    def test_missing_column(self, tmp_path, game_schema):
        path = tmp_path / "t.csv"
        path.write_text("player,time\n001,2013-05-19\n")
        with pytest.raises(SchemaError, match="missing columns"):
            read_csv(path, game_schema)

    def test_empty_file(self, tmp_path, game_schema):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_csv(path, game_schema)

    def test_ragged_line(self, tmp_path, game_schema):
        path = tmp_path / "t.csv"
        path.write_text("player,time,action,role,country,gold\n001,x\n")
        with pytest.raises(SchemaError, match="fields"):
            read_csv(path, game_schema)

    def test_blank_lines_skipped(self, tmp_path, game_schema):
        path = tmp_path / "t.csv"
        path.write_text("player,time,action,role,country,gold\n"
                        "\n001,2013-05-19,launch,d,C,0\n\n")
        assert len(read_csv(path, game_schema)) == 1
