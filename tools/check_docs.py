#!/usr/bin/env python3
"""Documentation link + section checker (stdlib only; CI docs job).

Scans every tracked Markdown file for inline links and validates that
relative targets exist in the repository. External (http/https/mailto)
links and pure in-page anchors are skipped; ``path#anchor`` links are
checked for the path part only. Additionally, load-bearing sections —
headings that code comments, README anchors or CI legs point at — must
exist in their documents (see ``_REQUIRED_SECTIONS``), so renaming or
dropping one fails the docs job instead of silently orphaning links.

Usage::

    python tools/check_docs.py            # check the whole repo
    python tools/check_docs.py README.md  # check specific files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: Directories never scanned for Markdown sources.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}

#: Headings (exact lines) that must exist in specific documents.
#: Anchored from code, README links or CI; keep in sync when renaming.
_REQUIRED_SECTIONS = {
    "ARCHITECTURE.md": (
        "## The physical operator tree: logical plan → executors",
        "## Sharded tables and append-only ingestion",
        "## Compaction, generations, and snapshot isolation",
        "## The query service: fingerprint → cache → pipeline",
        "## The HTTP service tier: admission control over the wire",
        "## Zone maps and compressed-domain scans",
        "## Materialized views: per-shard partials, incremental refresh",
        "## Static invariants",
    ),
    "README.md": (
        "## Growing tables: sharded storage and `ingest --append`",
        "## Compaction and retention",
        "## Caching and serving",
        "## Serving over HTTP",
        "## Materialized views: incremental per-shard refresh",
        "## Correctness tooling",
    ),
    "docs/http-api.md": (
        "## Endpoints",
        "## Admission control",
        "## Errors",
        "## Lifecycle",
    ),
    "docs/query-language.md": (
        "### Quoted strings",
        "## Sessionization (SESSIONIZE)",
        "## Birth selection",
        "## Materialized views",
    ),
}


def markdown_files(args: list[str]) -> list[Path]:
    """The files to check: CLI args, or every .md under the repo."""
    if args:
        return [ROOT / a for a in args]
    return sorted(p for p in ROOT.rglob("*.md")
                  if not (_SKIP_DIRS & set(p.relative_to(ROOT).parts)))


def check_file(path: Path) -> list[str]:
    """Problems found in one Markdown file (empty = clean)."""
    problems = []
    if not path.is_file():
        return [f"{path}: file does not exist"]
    text = path.read_text(encoding="utf-8")
    relative_name = path.resolve().relative_to(ROOT).as_posix()
    lines = set(text.splitlines())
    for heading in _REQUIRED_SECTIONS.get(relative_name, ()):
        if heading not in lines:
            problems.append(f"{relative_name}: required section "
                            f"missing -> {heading!r}")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}:{lineno}: broken link "
                    f"-> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    files = markdown_files(args)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
