#!/usr/bin/env python3
"""End-to-end smoke gauntlet for the HTTP service tier (CI leg).

Boots the real thing — ``python -m repro serve <table> --http`` as a
subprocess — and proves the serving story the ISSUE promises, over the
wire, with nothing mocked:

1. **Mixed concurrent traffic**: worker threads fire ``/query``,
   ``/explain``, ``/stats`` and ``/batch`` at the live server; every
   query result's digest must equal a direct in-process
   :class:`~repro.cohana.engine.CohanaEngine` run of the same
   statement over the same table directory.
2. **Structured failure**: a malformed statement comes back as a JSON
   400 carrying the error type and parse position — never a stack
   trace.
3. **Load shedding**: a second server with a one-slot, zero-queue,
   quota-1 admission config takes a simultaneous burst; at least one
   request must be shed with a 429 and an honest ``Retry-After``.
4. **Graceful drain**: SIGTERM lands while requests are in flight;
   every in-flight request completes (zero dropped), the final drain
   stats line is flushed, and the process exits 0.

Exit status 0 means the gauntlet passed. Needs ``PYTHONPATH=src``
(for the direct-engine parity runs); stdlib only otherwise.
"""

from __future__ import annotations

import http.client
import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

FAILURES: list[str] = []


def check(ok: bool, message: str) -> None:
    tag = "ok" if ok else "FAIL"
    print(f"  {tag}: {message}")
    if not ok:
        FAILURES.append(message)


QUERIES = {
    "cohorts": 'SELECT country, COHORTSIZE, AGE, UserCount() '
               'FROM D BIRTH FROM action = "launch" COHORT BY country',
    "metric": 'SELECT country, COHORTSIZE, AGE, Sum(gold) '
              'FROM D BIRTH FROM action = "launch" COHORT BY country',
    "selective": 'SELECT city, COHORTSIZE, AGE, UserCount() '
                 'FROM D BIRTH FROM action = "shop" COHORT BY city',
}
MALFORMED = 'SELECT country, FROM D BIRTH'


class Server:
    """One ``serve --http`` subprocess with its bound port."""

    def __init__(self, table_dir: Path, *flags: str):
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(table_dir),
             "--http", "127.0.0.1:0", *flags],
            stderr=subprocess.PIPE, text=True)
        assert self.process.stderr is not None
        self.stderr = self.process.stderr
        line = self.stderr.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if not match:
            self.process.kill()
            raise RuntimeError(f"server did not announce a port: "
                               f"{line!r}")
        self.port = int(match.group(1))
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                status, _, _ = self.request("GET", "/healthz")
            except OSError:
                time.sleep(0.05)
                continue
            if status == 200:
                return
        raise RuntimeError("server never became healthy")

    def request(self, method: str, path: str, body: dict | None = None,
                tenant: str | None = None,
                ) -> tuple[int, dict, dict]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=60)
        headers = {"X-Tenant": tenant} if tenant else {}
        conn.request(method, path,
                     body=json.dumps(body) if body is not None else None,
                     headers=headers)
        response = conn.getresponse()
        raw = response.read()
        conn.close()
        return (response.status,
                {k.lower(): v for k, v in response.getheaders()},
                json.loads(raw) if raw else {})


def build_dataset(workdir: Path) -> Path:
    csv = workdir / "data.csv"
    table_dir = workdir / "table_dir"
    for command in (["generate", str(csv), "--users", "40",
                     "--seed", "11"],
                    ["ingest", str(csv), str(table_dir),
                     "--chunk-rows", "256"]):
        subprocess.run([sys.executable, "-m", "repro", *command],
                       check=True, capture_output=True)
    return table_dir


def direct_digests(table_dir: Path) -> dict[str, str]:
    """Ground truth digests straight from the engine, no HTTP."""
    from repro.cohana import CohanaEngine
    from repro.service.protocol import result_digest

    engine = CohanaEngine()
    engine.load_table("D", str(table_dir))
    return {name: result_digest(engine.query(engine.parse(text)))
            for name, text in QUERIES.items()}


def mixed_traffic(server: Server, digests: dict[str, str]) -> None:
    print("phase 1: concurrent mixed traffic + digest parity")
    outcomes: list[tuple[str, bool]] = []
    lock = threading.Lock()

    def query_worker(name: str) -> None:
        status, _, payload = server.request(
            "POST", "/query", {"query": QUERIES[name]})
        with lock:
            outcomes.append((f"query {name}", status == 200
                             and payload["digest"] == digests[name]))

    def explain_worker(name: str) -> None:
        status, _, payload = server.request(
            "POST", "/explain", {"query": QUERIES[name]})
        with lock:
            outcomes.append((f"explain {name}", status == 200
                             and "explain" in payload))

    def stats_worker() -> None:
        status, _, payload = server.request("GET", "/stats")
        with lock:
            outcomes.append(("stats", status == 200
                             and "http" in payload
                             and "service" in payload))

    def batch_worker() -> None:
        status, _, payload = server.request(
            "POST", "/batch",
            {"queries": [QUERIES["cohorts"], QUERIES["metric"]]})
        ok = (status == 200 and payload["count"] == 2 and all(
            entry["ok"] and entry["digest"] == digests[name]
            for entry, name in zip(payload["results"],
                                   ("cohorts", "metric"))))
        with lock:
            outcomes.append(("batch", ok))

    threads = []
    for _ in range(3):  # three rounds of everything, all at once
        threads += [threading.Thread(target=query_worker, args=(n,))
                    for n in QUERIES]
        threads += [threading.Thread(target=explain_worker, args=(n,))
                    for n in QUERIES]
        threads += [threading.Thread(target=stats_worker),
                    threading.Thread(target=batch_worker)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    check(len(outcomes) == len(threads),
          f"all {len(threads)} concurrent requests answered")
    for label, ok in sorted(outcomes):
        if not ok:
            check(False, f"{label} failed or diverged from the "
                         f"direct engine run")
    if all(ok for _, ok in outcomes):
        check(True, f"digest parity with direct engine runs across "
                    f"{len(outcomes)} responses")

    status, _, payload = server.request(
        "POST", "/query", {"query": MALFORMED})
    error = payload.get("error", {})
    check(status == 400 and error.get("type") == "ParseError"
          and isinstance(error.get("position"), int),
          f"malformed statement → structured 400 "
          f"(got {status}, {error.get('type')}, "
          f"position={error.get('position')})")


def burst(table_dir: Path) -> None:
    print("phase 2: 429-inducing burst against a one-slot server")
    server = Server(table_dir, "--max-inflight", "1",
                    "--queue-depth", "0", "--tenant-quota", "1")
    try:
        statuses: list[tuple[int, dict]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(10)

        def worker(wid: int) -> None:
            barrier.wait()
            status, headers, _ = server.request(
                "POST", "/query",
                {"query": QUERIES["selective"], "use_cache": False},
                tenant=f"burst-{wid % 3}")
            with lock:
                statuses.append((status, headers))

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shed = [(s, h) for s, h in statuses if s == 429]
        check(len(shed) >= 1,
              f"burst shed {len(shed)}/10 requests with 429")
        check(all(float(h.get("retry-after", 0)) > 0 for _, h in shed),
              "every 429 carried a positive Retry-After")
        check(all(s in (200, 429) for s, _ in statuses),
              f"no unexpected statuses "
              f"({sorted({s for s, _ in statuses})})")
    finally:
        server.process.terminate()
        server.process.wait(30)


def drain(server: Server, digests: dict[str, str]) -> None:
    print("phase 3: SIGTERM graceful drain with requests in flight")
    outcomes: list[bool] = []
    lock = threading.Lock()
    started = threading.Barrier(5)

    def worker() -> None:
        started.wait()
        status, _, payload = server.request(
            "POST", "/query",
            {"query": QUERIES["selective"], "use_cache": False})
        with lock:
            outcomes.append(status == 200 and payload["digest"]
                            == digests["selective"])

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    started.wait()
    # All four must be in flight server-side (reading /stats is not
    # admission-gated) before the plug is pulled — a request the
    # server has not read yet is not "in flight".
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        _, _, snapshot = server.request("GET", "/stats")
        if snapshot["http"]["inflight"] >= 4:
            break
        time.sleep(0.005)
    server.process.send_signal(signal.SIGTERM)
    for thread in threads:
        thread.join(60)
    code = server.process.wait(60)
    check(len(outcomes) == 4 and all(outcomes),
          f"all {len(outcomes)}/4 in-flight requests completed with "
          f"digest parity (zero dropped)")
    check(code == 0, f"server exited 0 after drain (got {code})")
    tail = server.stderr.read()
    match = re.search(r"drain: (\{.*\})", tail)
    stats = json.loads(match.group(1)) if match else {}
    check(bool(match) and stats.get("received", -1)
          == stats.get("completed", 0) + stats.get("errors", 0)
          + stats.get("shed", 0),
          f"drain stats flushed and balanced ({stats})")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        table_dir = build_dataset(workdir)
        digests = direct_digests(table_dir)
        print(f"dataset ready; direct digests: {digests}")
        server = Server(table_dir, "--max-inflight", "4",
                        "--queue-depth", "64", "--tenant-quota", "64")
        try:
            mixed_traffic(server, digests)
            burst(table_dir)
            drain(server, digests)
        finally:
            if server.process.poll() is None:
                server.process.kill()
    if FAILURES:
        print(f"serve-smoke: {len(FAILURES)} failure(s)")
        return 1
    print("serve-smoke: all phases passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
