"""``python -m tools.repolint`` entry point."""

from tools.repolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
