"""The rule battery: one module per enforced contract.

``ALL_RULES`` is the canonical ordered registry — ``--list-rules``,
the JSON report, the ARCHITECTURE.md rule table and the self-check
fixtures all key off the ids here. Ids are stable: never renumber,
rename, or reuse one (suppression comments in the tree refer to them).
"""

from __future__ import annotations

from tools.repolint.core import SUPPRESSION_RULE, Rule
from tools.repolint.rules.atomic_publish import AtomicPublishRule
from tools.repolint.rules.crash_seam import CrashSeamRule
from tools.repolint.rules.determinism import DeterminismRule
from tools.repolint.rules.executor_lifecycle import ExecutorLifecycleRule
from tools.repolint.rules.fsync_replace import FsyncBeforeReplaceRule
from tools.repolint.rules.kernel_purity import KernelPurityRule
from tools.repolint.rules.lock_discipline import LockDisciplineRule
from tools.repolint.rules.lock_order import LockOrderRule


def all_rules() -> list[Rule]:
    """Fresh rule instances for one engine run (rules carry per-run
    state, so instances are never shared between runs)."""
    return [
        AtomicPublishRule(),
        LockDisciplineRule(),
        LockOrderRule(),
        KernelPurityRule(),
        CrashSeamRule(),
        ExecutorLifecycleRule(),
        DeterminismRule(),
        FsyncBeforeReplaceRule(),
        SUPPRESSION_RULE.__class__(),
    ]
