"""kernel-purity: the three kernel files stay pure Chunk -> ChunkPartial.

PR 8 landed SESSIONIZE with zero kernel edits precisely because
``vectorized.py`` / ``iterator_executor.py`` / ``compressed.py`` are
pure functions over chunks: no storage writers, no service or view
imports, no I/O, no clock, no RNG, no global mutation. That property
is what makes the vectorized-vs-iterator digest-parity sweep a real
oracle (same inputs, same outputs, forever) and what lets new
operators wrap kernels with derived-column views instead of editing
them. This rule freezes the property.
"""

from __future__ import annotations

import ast

from tools.repolint.core import ModuleContext, Rule, call_name

#: Import prefixes kernels may never touch: storage writers and
#: lifecycle, the service/view layers above them, and ambient-effect
#: stdlib modules (I/O, clock, randomness, concurrency).
FORBIDDEN_IMPORTS = (
    "repro.storage.writer", "repro.storage.sharded",
    "repro.storage.compaction", "repro.storage.format",
    "repro.service", "repro.views", "repro.cli",
    "os", "io", "pathlib", "shutil", "socket", "subprocess",
    "threading", "multiprocessing", "time", "random", "uuid",
    "secrets",
)

#: Direct calls with ambient effects.
_BANNED_CALLS = frozenset({
    "open", "print", "input", "exec", "eval", "__import__",
})


class KernelPurityRule(Rule):
    id = "kernel-purity"
    contract = ("kernel files (vectorized/iterator_executor/"
                "compressed) import no storage writers, service, "
                "views, or I/O/clock/RNG modules, and never mutate "
                "global state")
    paths = ("src/repro/cohana/vectorized.py",
             "src/repro/cohana/iterator_executor.py",
             "src/repro/cohana/compressed.py")

    def visit_Import(self, node: ast.Import, ctx: ModuleContext) -> None:
        for alias in node.names:
            self._check_import(node, alias.name, ctx)

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         ctx: ModuleContext) -> None:
        if node.module is not None and node.level == 0:
            self._check_import(node, node.module, ctx)

    def _check_import(self, node: ast.AST, module: str,
                      ctx: ModuleContext) -> None:
        for banned in FORBIDDEN_IMPORTS:
            if module == banned or module.startswith(banned + "."):
                ctx.report(self, node, (
                    f"kernel imports {module!r} — kernels are pure "
                    f"Chunk -> ChunkPartial functions and must not "
                    f"reach storage writers, the service/view layers, "
                    f"or ambient-effect stdlib modules; do this work "
                    f"in an operator or the scheduler instead"))
                return

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = call_name(node)
        if name in _BANNED_CALLS:
            ctx.report(self, node, (
                f"kernel calls {name}() — no I/O or dynamic "
                f"execution inside a kernel"))

    def visit_Global(self, node: ast.Global, ctx: ModuleContext) -> None:
        ctx.report(self, node, (
            f"kernel declares `global {', '.join(node.names)}` — "
            f"kernels must not mutate module state; thread results "
            f"through ChunkPartial"))
