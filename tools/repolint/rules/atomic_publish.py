"""atomic-publish: manifests and view state publish through one seam.

The crash-consistency story (ARCHITECTURE.md, "Compaction, generations,
and snapshot isolation") rests on every manifest / view-state publish
going through the blessed fsync-tmp + atomic ``os.replace`` functions:
``publish_manifest`` in ``storage/sharded.py`` and
``DiskViewStore._write_atomic`` in ``views/store.py``. A stray
``os.replace`` — or a write-mode ``open`` of a ``MANIFEST``/``VIEWS``
path — anywhere else bypasses the crash points, the fsyncs, and the
publish lock, and silently exits the harness's coverage.
"""

from __future__ import annotations

import ast

from tools.repolint.core import (
    ModuleContext,
    Rule,
    call_name,
    is_write_mode,
)

#: The only functions allowed to invoke the atomic-replace syscalls or
#: write manifest/view files. Adding a name here is an architectural
#: decision: the new function must carry the full publish discipline
#: (fsync before replace, crash points where applicable).
BLESSED_PUBLISHERS = frozenset({
    "publish_manifest",   # storage/sharded.py: the manifest seam
    "_write_atomic",      # views/store.py: the view-state seam
})

#: Calls that atomically swap a path — only publishers may use them.
_REPLACE_CALLS = frozenset({
    "os.replace", "os.rename", "shutil.move", "_os_replace",
})

#: Write targets that smell like manifest / view state.
_GUARDED_MARKERS = ("MANIFEST", "VIEWS")

#: Modules that own manifest/view bytes: write-mode opens here must
#: come from a blessed publisher or a shard writer.
_STORAGE_SCOPE = ("src/repro/storage/*.py", "src/repro/views/*.py")

#: Shard-file writers: they write *new* exclusive-create files (never
#: replace existing bytes), which is the other legal write shape.
_SHARD_WRITERS = frozenset({"_append_shard_locked", "compact"})


class AtomicPublishRule(Rule):
    id = "atomic-publish"
    contract = ("os.replace/os.rename and MANIFEST*/VIEWS/ writes "
                "happen only inside the blessed publish seam "
                "(publish_manifest, DiskViewStore._write_atomic)")
    paths = ("src/repro/*.py", "src/repro/*/*.py", "src/repro/*/*/*.py")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = call_name(node)
        if name in _REPLACE_CALLS:
            if not _inside_blessed(ctx):
                ctx.report(self, node, (
                    f"{name} outside the blessed publish seam — route "
                    f"this through publish_manifest/_write_atomic (or "
                    f"bless the enclosing function after giving it the "
                    f"full fsync+atomic-replace discipline)"))
            return
        if not any(self.applies_scope(ctx.path, p)
                   for p in _STORAGE_SCOPE):
            return
        writing = (name == "open" and is_write_mode(node)) or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("write_text", "write_bytes"))
        if not writing:
            return
        target_src = ctx.source(node)
        if not any(marker in target_src for marker in _GUARDED_MARKERS):
            return
        names = set(ctx.function_names())
        if names & (BLESSED_PUBLISHERS | _SHARD_WRITERS):
            return
        ctx.report(self, node, (
            "write to a MANIFEST/VIEWS path outside the blessed "
            "publish seam — only publish_manifest/_write_atomic may "
            "produce these bytes"))

    @staticmethod
    def applies_scope(path: str, pattern: str) -> bool:
        import fnmatch
        return (fnmatch.fnmatch(path, pattern)
                or fnmatch.fnmatch(path, f"*/{pattern}"))


def _inside_blessed(ctx: ModuleContext) -> bool:
    return bool(set(ctx.function_names()) & BLESSED_PUBLISHERS)
