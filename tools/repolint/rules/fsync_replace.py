"""fsync-before-replace: atomic replace implies durable bytes first.

``os.replace`` makes a rename atomic, but atomicity without an fsync
of the temp file is a crash-consistency lie: after a power cut the
filesystem may have persisted the rename *before* the data blocks,
leaving the real name pointing at a hole. The publish seam in
``storage/sharded.py`` got this right from day one (write, flush,
``fsync``, then replace); this rule makes the discipline mechanical —
any function that both writes a file and ``os.replace``s it must
fsync between the write and the replace.
"""

from __future__ import annotations

import ast

from tools.repolint.core import ModuleContext, Rule, call_name, is_write_mode

_REPLACE = frozenset({"os.replace", "_os_replace"})

#: Calls whose name says "this makes bytes durable".
_FSYNCISH = ("fsync",)


class FsyncBeforeReplaceRule(Rule):
    id = "fsync-before-replace"
    contract = ("a function that writes a file and os.replace()s it "
                "must fsync between the write and the replace — "
                "atomic rename without durable bytes is a torn "
                "publish after a crash")
    paths = ("src/repro/*.py", "src/repro/*/*.py", "src/repro/*/*/*.py")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if call_name(node) not in _REPLACE:
            return
        func = ctx.enclosing_function()
        if func is None:
            return
        write_lines = []
        fsync_lines = []
        for sub in ast.walk(func):
            if not isinstance(sub, ast.Call):
                continue
            name = call_name(sub) or ""
            if ((name == "open" and is_write_mode(sub))
                    or (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("write_text",
                                              "write_bytes"))):
                write_lines.append(sub.lineno)
            if any(marker in name.split(".")[-1]
                   for marker in _FSYNCISH):
                fsync_lines.append(sub.lineno)
        replaced = node.lineno
        writes_before = [ln for ln in write_lines if ln < replaced]
        if not writes_before:
            return
        first_write = min(writes_before)
        if any(first_write <= ln <= replaced for ln in fsync_lines):
            return
        ctx.report(self, node, (
            "os.replace() of freshly written bytes with no fsync in "
            "between — a crash can persist the rename before the "
            "data; write via `open`, flush, `os.fsync(f.fileno())`, "
            "then replace (see publish_manifest)"))
