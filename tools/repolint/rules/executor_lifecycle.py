"""executor-lifecycle: every pool provably reaches a shutdown.

A ``ThreadPoolExecutor``/``ProcessPoolExecutor`` that never shuts down
leaks worker threads (or zombie processes) past the query that spawned
them — the exact bug class PR 3 fixed by draining pools with
``cancel_futures`` on kernel failure. The rule demands one of the
deterministic shapes:

* constructed as a ``with`` context manager;
* bound to a local that is ``.shutdown()`` somewhere in the function,
  handed to another call (ownership transfer, e.g. ``_drain_pool``),
  or returned;
* bound to ``self.<attr>`` where the class ``.shutdown()``s that
  attribute somewhere.

Anything else — in particular a bare ``Executor().submit(...)`` — is
an orphaned pool.
"""

from __future__ import annotations

import ast

from tools.repolint.core import ModuleContext, Rule, dotted_name

_EXECUTORS = ("ThreadPoolExecutor", "ProcessPoolExecutor")


def _is_executor_ctor(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _EXECUTORS


class ExecutorLifecycleRule(Rule):
    id = "executor-lifecycle"
    contract = ("every ThreadPoolExecutor/ProcessPoolExecutor reaches "
                "a deterministic shutdown: `with` block, a local "
                "`.shutdown()`/ownership transfer, or a class-level "
                "`self.<attr>.shutdown()`")
    paths = ("src/repro/*.py", "src/repro/*/*.py", "src/repro/*/*/*.py")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not _is_executor_ctor(node):
            return
        parent = ctx.parents.get(node)
        if isinstance(parent, ast.withitem):
            return
        if isinstance(parent, ast.Call) and node in parent.args:
            return  # ownership transferred to the callee
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                if self._local_reaches_shutdown(target.id, ctx):
                    return
            elif (isinstance(target, ast.Attribute)
                  and isinstance(target.value, ast.Name)
                  and target.value.id == "self"
                  and self._attr_reaches_shutdown(target.attr, ctx)):
                return
        ctx.report(self, node, (
            "executor pool never provably shut down — use a `with` "
            "block, call `.shutdown()` on every path (or hand the "
            "pool to a draining helper), or shut the stored attribute "
            "down in a lifecycle method"))

    @staticmethod
    def _local_reaches_shutdown(name: str, ctx: ModuleContext) -> bool:
        func = ctx.enclosing_function()
        if func is None:
            return False
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "shutdown"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                return True
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
            if (isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == name):
                return True
        return False

    @staticmethod
    def _attr_reaches_shutdown(attr: str, ctx: ModuleContext) -> bool:
        cls = ctx.enclosing_class()
        if cls is None:
            return False
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "shutdown"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == attr
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
            for node in ast.walk(cls))
