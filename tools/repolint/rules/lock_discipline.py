"""lock-discipline: catalog state only mutates under the catalog lock.

``CohanaEngine`` shares ``_catalog`` / ``_versions`` /
``_mem_version_counter`` across the service's admission threads; an
unguarded mutation is a lost update waiting to happen (two
registrations sharing one ``mem:`` token would let stale cached
results survive — the exact scenario the lock comment in ``engine.py``
documents). This rule is the intraprocedural "lock held?" analysis:
every mutation of the guarded attributes must sit lexically inside
``with self._catalog_lock:``.

Two exemptions mirror the code's real contracts:

* ``__init__`` — the object is not shared yet;
* helper methods whose docstring declares ``Caller holds
  ``self._catalog_lock```` — the documented locked-helper
  convention (``_stamp_version``); the caller-side call sites are
  themselves inside ``with`` blocks this rule checks.
"""

from __future__ import annotations

import ast

from tools.repolint.core import ModuleContext, Rule

#: Attribute names accepted as the catalog lock in ``with self.<x>``.
LOCK_ATTRS = frozenset({"_catalog_lock", "_lock"})

#: Engine state the lock guards, as one unit.
GUARDED_ATTRS = frozenset({
    "_catalog", "_versions", "_mem_version_counter",
})

#: Method calls that mutate a dict/list in place.
_MUTATING_METHODS = frozenset({
    "pop", "clear", "update", "setdefault", "popitem", "append",
})


def _self_attr(node: ast.AST, attrs: frozenset[str]) -> str | None:
    """``_catalog`` for ``self._catalog`` / ``self._catalog[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in attrs):
        return node.attr
    return None


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    contract = ("engine catalog state (_catalog/_versions/"
                "_mem_version_counter) mutates only inside `with "
                "self._catalog_lock`, in __init__, or in a documented "
                "locked helper (docstring: 'Caller holds')")
    paths = ("src/repro/cohana/engine.py",)

    def visit_Assign(self, node: ast.Assign, ctx: ModuleContext) -> None:
        for target in node.targets:
            self._check_target(node, target, ctx)

    def visit_AugAssign(self, node: ast.AugAssign,
                        ctx: ModuleContext) -> None:
        self._check_target(node, node.target, ctx)

    def visit_AnnAssign(self, node: ast.AnnAssign,
                        ctx: ModuleContext) -> None:
        if node.value is not None:
            self._check_target(node, node.target, ctx)

    def visit_Delete(self, node: ast.Delete, ctx: ModuleContext) -> None:
        for target in node.targets:
            self._check_target(node, target, ctx)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS):
            attr = _self_attr(func.value, GUARDED_ATTRS)
            if attr is not None:
                self._check(node, attr, ctx)

    # -- the actual discipline check ------------------------------------------

    def _check_target(self, node: ast.AST, target: ast.AST,
                      ctx: ModuleContext) -> None:
        attr = _self_attr(target, GUARDED_ATTRS)
        if attr is not None:
            self._check(node, attr, ctx)

    def _check(self, node: ast.AST, attr: str,
               ctx: ModuleContext) -> None:
        if self._lock_held(ctx) or self._exempt(ctx):
            return
        ctx.report(self, node, (
            f"mutation of self.{attr} outside `with "
            f"self._catalog_lock` — catalog, version map and counter "
            f"move as one unit under the lock (see CohanaEngine."
            f"__init__); hold the lock or document a locked-helper "
            f"contract ('Caller holds ``self._catalog_lock``')"))

    @staticmethod
    def _lock_held(ctx: ModuleContext) -> bool:
        return any(_self_attr(expr, LOCK_ATTRS) is not None
                   for expr in ctx.with_stack)

    @staticmethod
    def _exempt(ctx: ModuleContext) -> bool:
        func = ctx.enclosing_function()
        if func is None:
            return False
        if func.name == "__init__":
            return True
        doc = ast.get_docstring(func) or ""
        return "Caller holds" in doc and any(
            lock in doc for lock in LOCK_ATTRS)
