"""crash-seam: storage publish paths never swallow broad exceptions.

The fault-injection harness (``tests/faultinject.py``) raises
``InjectedCrash`` — deliberately ``BaseException``-derived — at every
publish-path crash point to prove recovery. A bare ``except:`` or
``except BaseException:`` in ``storage/`` or the view store would
swallow the injected crash and let a "recovered" run pass vacuously;
an ``except Exception:`` there swallows real OS errors instead,
turning a failed publish into silent data loss. Handlers in these
modules must name the exceptions they understand — or re-raise with a
bare ``raise`` after their bookkeeping (the one shape that preserves
the in-flight exception object).
"""

from __future__ import annotations

import ast

from tools.repolint.core import (
    ModuleContext,
    Rule,
    dotted_name,
    handler_reraises,
)

_BROAD = frozenset({"Exception", "BaseException",
                    "builtins.Exception", "builtins.BaseException"})


def _broad_names(type_node: ast.expr | None) -> list[str]:
    """Broad exception classes named by a handler's type expression."""
    if type_node is None:
        return []
    exprs = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    names = []
    for expr in exprs:
        name = dotted_name(expr)
        if name in _BROAD:
            names.append(name)
    return names


class CrashSeamRule(Rule):
    id = "crash-seam"
    contract = ("storage/ and views-store publish paths have no bare "
                "`except:` / `except Exception` / `except "
                "BaseException` that fails to re-raise — broad "
                "handlers would swallow injected crashes or real "
                "publish failures")
    paths = ("src/repro/storage/*.py", "src/repro/views/*.py")

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: ModuleContext) -> None:
        if node.type is None:
            ctx.report(self, node, (
                "bare `except:` catches BaseException and would "
                "swallow the fault harness's InjectedCrash — name "
                "the exceptions this publish path understands"))
            return
        broad = _broad_names(node.type)
        if not broad or handler_reraises(node):
            return
        ctx.report(self, node, (
            f"`except {broad[0]}` without a bare `raise` in a "
            f"storage publish path — this swallows "
            f"{'injected crashes' if 'Base' in broad[0] else 'real publish failures'};"
            f" catch the specific exceptions instead, or re-raise "
            f"after bookkeeping"))
