"""determinism: fingerprint/digest modules never consult clock or RNG.

Fingerprints key the service result cache; digests key shard
verification, plan caches and view partials. Their whole value is
that equal inputs hash equal **forever** — across processes,
machines, and reruns. One ``time.time()`` or ``uuid4()`` folded into
a canonical form silently degrades every cache to miss-always (or
worse: makes two processes disagree about what bytes are valid).
This rule bans the nondeterminism sources outright in the modules
that define identity.
"""

from __future__ import annotations

import ast

from tools.repolint.core import ModuleContext, Rule, call_name

#: Module imports that carry ambient nondeterminism.
_BANNED_IMPORTS = ("time", "random", "uuid", "secrets")

#: Dotted calls that read the clock / RNG even without a banned
#: top-level import (e.g. via datetime or os).
_BANNED_CALLS = frozenset({
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "os.urandom", "time.time", "time.monotonic", "time.time_ns",
    "random.random", "uuid.uuid4", "uuid.uuid1",
})


class DeterminismRule(Rule):
    id = "determinism"
    contract = ("identity-defining modules (service/fingerprint, "
                "storage/format, storage/zonemap, storage/sharded) "
                "import no time/random/uuid/secrets and call no "
                "clock/RNG source")
    paths = ("src/repro/service/fingerprint.py",
             "src/repro/storage/format.py",
             "src/repro/storage/zonemap.py",
             "src/repro/storage/sharded.py")

    def visit_Import(self, node: ast.Import, ctx: ModuleContext) -> None:
        for alias in node.names:
            self._check(node, alias.name, ctx)

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         ctx: ModuleContext) -> None:
        if node.module is not None and node.level == 0:
            self._check(node, node.module, ctx)

    def _check(self, node: ast.AST, module: str,
               ctx: ModuleContext) -> None:
        root = module.split(".")[0]
        if root in _BANNED_IMPORTS:
            ctx.report(self, node, (
                f"{module!r} imported in an identity-defining module "
                f"— fingerprints and digests must hash equal inputs "
                f"equal forever; take timestamps as arguments instead "
                f"of reading the clock"))

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = call_name(node)
        if name in _BANNED_CALLS:
            ctx.report(self, node, (
                f"{name}() inside an identity-defining module — "
                f"clock/RNG reads make equal inputs hash unequal"))
