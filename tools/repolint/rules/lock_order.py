"""lock-order: the static lock-acquisition graph must stay acyclic.

The engine holds locks while calling into code that takes more locks:
``append_shard`` holds the per-directory publish lock while
``load_sharded`` pins generations under ``_PIN_LOCK``; the engine's
catalog lock wraps view-catalog calls that reach the disk store. Two
threads acquiring two locks in opposite orders is the classic silent
deadlock, and no test reliably provokes it — so this rule builds the
static graph instead: a lexical ``with A: ... with B:`` nesting adds
edge A→B, and a call made while A is held adds A→L for every lock L
the (transitively resolved) callee acquires. Any cycle in the result
is reported.

Resolution is deliberately conservative: plain-name calls resolve to
module-level functions of that name, ``self.m()`` to methods named
``m`` on the lexically enclosing class; attribute calls on other
objects are not followed. That misses some flows (documented
limitation) but keeps the graph honest enough that an edge in a
reported cycle is worth reading.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from pathlib import PurePosixPath

from tools.repolint.core import ModuleContext, Project, Rule, dotted_name


def _lockish(name: str) -> bool:
    return "lock" in name.lower()


class LockOrderRule(Rule):
    id = "lock-order"
    contract = ("the static graph of nested lock acquisitions "
                "(lexical `with` nesting plus calls made while a lock "
                "is held) contains no cycle")
    paths = ("src/repro/*.py", "src/repro/*/*.py", "src/repro/*/*/*.py")

    def __init__(self) -> None:
        #: qual -> locks acquired lexically anywhere in the function.
        self._direct: dict[str, set[str]] = defaultdict(set)
        #: qual -> callee keys (every call, held or not).
        self._callgraph: dict[str, set[tuple]] = defaultdict(set)
        #: bare function name -> candidate quals (module-level defs).
        self._funcs_by_name: dict[str, set[str]] = defaultdict(set)
        #: (class name, method name) -> qual.
        self._methods: dict[tuple[str, str], str] = {}
        #: direct nesting edges: (held, acquired, path, line).
        self._edges: list[tuple[str, str, str, int]] = []
        #: calls made under held locks: (held, callee key, path, line).
        self._locked_calls: list[tuple] = []

    # -- canonical lock names -------------------------------------------------

    def _canon(self, expr: ast.expr, ctx: ModuleContext) -> str | None:
        """A cross-file-stable name for a lock expression, or None when
        the expression is not lock-like."""
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is not None and _lockish(name.split(".")[-1]):
                return f"{name.split('.')[-1]}()"
            return None
        if isinstance(expr, ast.Attribute) and _lockish(expr.attr):
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id in ("self", "cls")):
                cls = ctx.enclosing_class()
                owner = cls.name if cls is not None else "self"
                return f"{owner}.{expr.attr}"
            return f"{dotted_name(expr) or expr.attr}"
        if isinstance(expr, ast.Name) and _lockish(expr.id):
            stem = PurePosixPath(ctx.path).stem
            return f"{stem}.{expr.id}"
        return None

    def _qual(self, ctx: ModuleContext) -> str | None:
        func = ctx.enclosing_function()
        if func is None:
            return None
        cls = ctx.enclosing_class()
        if cls is not None:
            return f"{cls.name}.{func.name}"
        stem = PurePosixPath(ctx.path).stem
        return f"{stem}.{func.name}"

    # -- collection visitors --------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: ModuleContext) -> None:
        cls = ctx.enclosing_class()
        stem = PurePosixPath(ctx.path).stem
        if cls is not None and not ctx.func_stack:
            self._methods[(cls.name, node.name)] = \
                f"{cls.name}.{node.name}"
        elif not ctx.func_stack:
            self._funcs_by_name[node.name].add(f"{stem}.{node.name}")

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With, ctx: ModuleContext) -> None:
        acquired = [canon for item in node.items
                    if (canon := self._canon(item.context_expr, ctx))]
        if not acquired:
            return
        held = {canon for expr in ctx.with_stack
                if (canon := self._canon(expr, ctx))}
        for h in sorted(held):
            for a in acquired:
                if h != a:
                    self._edges.append((h, a, ctx.path, node.lineno))
        qual = self._qual(ctx)
        if qual is not None:
            self._direct[qual].update(acquired)

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        key = self._callee_key(node, ctx)
        if key is None:
            return
        qual = self._qual(ctx)
        if qual is not None:
            self._callgraph[qual].add(key)
        held = {canon for expr in ctx.with_stack
                if (canon := self._canon(expr, ctx))}
        if held:
            self._locked_calls.append(
                (frozenset(held), key, ctx.path, node.lineno))

    @staticmethod
    def _callee_key(node: ast.Call, ctx: ModuleContext) -> tuple | None:
        func = node.func
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")):
            cls = ctx.enclosing_class()
            if cls is not None:
                return ("method", cls.name, func.attr)
        return None

    # -- the cross-file analysis ----------------------------------------------

    def _resolve(self, key: tuple) -> set[str]:
        if key[0] == "name":
            return set(self._funcs_by_name.get(key[1], ()))
        qual = self._methods.get((key[1], key[2]))
        return {qual} if qual is not None else set()

    def _summaries(self) -> dict[str, set[str]]:
        """Locks each function acquires, transitively through resolved
        calls (fixpoint over the name-resolved call graph)."""
        summary = {qual: set(locks)
                   for qual, locks in self._direct.items()}
        changed = True
        while changed:
            changed = False
            for qual, callees in self._callgraph.items():
                bucket = summary.setdefault(qual, set())
                before = len(bucket)
                for key in callees:
                    for target in self._resolve(key):
                        bucket.update(summary.get(target, ()))
                if len(bucket) != before:
                    changed = True
        return summary

    def finish(self, project: Project) -> None:
        summary = self._summaries()
        edges = list(self._edges)
        for held, key, path, line in self._locked_calls:
            for target in self._resolve(key):
                for lock in summary.get(target, ()):
                    for h in held:
                        if h != lock:
                            edges.append((h, lock, path, line))
        graph: dict[str, set[str]] = defaultdict(set)
        witness: dict[tuple[str, str], tuple[str, int]] = {}
        for h, a, path, line in edges:
            graph[h].add(a)
            witness.setdefault((h, a), (path, line))
        for component in _cyclic_sccs(graph):
            locks = sorted(component)
            path, line = min(
                witness[(h, a)] for h in component for a in graph[h]
                if a in component and (h, a) in witness)
            project.report(self, path, line, 0, (
                f"potential lock-order deadlock: "
                f"{{{', '.join(locks)}}} are acquired in conflicting "
                f"orders (cycle in the static acquisition graph); "
                f"pick one order and stick to it"))


def _cyclic_sccs(graph: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components with more than one node (self
    loops are excluded upstream: every lock here is re-entrant or
    per-instance). Iterative Tarjan."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    out: list[set[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(
                        graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    out.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return out
