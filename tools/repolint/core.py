"""The repolint rule engine: one AST walk, many invariant checkers.

repolint exists because the engine's deepest contracts — manifests only
publish through the fsync-tmp + atomic-replace seam, catalog state only
mutates under the catalog lock, kernels stay pure ``Chunk ->
ChunkPartial`` functions — are invisible to generic linters. Each
contract becomes a :class:`Rule` with a stable id; the engine parses
every file once, drives all interested rules through a single recursive
walk (maintaining the class / function / ``with`` stacks rules need for
lexical "lock held here?" questions), applies suppression comments, and
renders findings as text or JSON.

Suppressions are deliberate, attributed exceptions::

    risky_call()  # repolint: ignore[rule-id] -- why this is safe

A suppression without a ``-- reason`` does not suppress anything and is
itself reported under the ``suppression-reason`` meta rule, so the
escape hatch cannot silently rot.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path

#: ``# repolint: ignore[id-a,id-b] -- reason`` anywhere on a line.
_SUPPRESS = re.compile(
    r"#\s*repolint:\s*ignore\[([A-Za-z0-9_,\s-]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?")

#: Meta-rule id for malformed suppressions (see :class:`Engine`).
SUPPRESSION_RULE_ID = "suppression-reason"


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    reason: str | None = None

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def to_json(self) -> dict:
        payload = {"rule": self.rule, "path": self.path,
                   "line": self.line, "col": self.col,
                   "message": self.message, "severity": self.severity}
        if self.suppressed:
            payload["suppressed"] = True
            payload["reason"] = self.reason
        return payload


class Rule:
    """Base class for one machine-enforced contract.

    Subclasses set the identity attributes and implement any of:

    * ``visit_<NodeType>(node, ctx)`` — called during the engine's
      single walk for every matching AST node;
    * ``begin_module(ctx)`` / ``end_module(ctx)`` — per-file setup and
      teardown (per-file state lives on the rule between the two);
    * ``finish(project)`` — called once after every file, for
      cross-file analyses (see the lock-order rule).

    Attributes:
        id: stable kebab-case identifier used in output, ``--select``
            and suppression comments. Never renumber or reuse.
        contract: the one-line invariant statement shown by
            ``--list-rules`` and mirrored in ARCHITECTURE.md.
        paths: fnmatch patterns (posix, relative to the scan root)
            restricting which files the rule sees; ``None`` means every
            scanned file. Patterns also match with any directory
            prefix, so fixture trees that mirror ``src/...`` are seen.
        severity: ``"error"`` findings always fail the run;
            ``"warning"`` findings fail only under ``--strict``.
    """

    id: str = ""
    contract: str = ""
    paths: tuple[str, ...] | None = None
    severity: str = "error"

    def applies_to(self, relpath: str) -> bool:
        if self.paths is None:
            return True
        return any(fnmatch.fnmatch(relpath, pattern)
                   or fnmatch.fnmatch(relpath, f"*/{pattern}")
                   for pattern in self.paths)

    def begin_module(self, ctx: ModuleContext) -> None:
        pass

    def end_module(self, ctx: ModuleContext) -> None:
        pass

    def finish(self, project: Project) -> None:
        pass


class ModuleContext:
    """Everything a rule may ask about the file being walked."""

    def __init__(self, path: str, tree: ast.Module, text: str):
        self.path = path
        self.tree = tree
        self.text = text
        self.lines = text.splitlines()
        #: Innermost-last stacks maintained by the engine's walk.
        self.class_stack: list[ast.ClassDef] = []
        self.func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        #: Context expressions of every ``with`` item enclosing the
        #: current node (the item's own expression is walked *outside*
        #: its block, so a lock never appears held while acquired).
        self.with_stack: list[ast.expr] = []
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self._findings: list[Finding] = []

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        self._findings.append(Finding(
            rule=rule.id, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message, severity=rule.severity))

    # -- conveniences rules keep reaching for --------------------------------

    def source(self, node: ast.AST) -> str:
        return ast.get_source_segment(self.text, node) or ""

    def enclosing_function(self):
        return self.func_stack[-1] if self.func_stack else None

    def enclosing_class(self):
        return self.class_stack[-1] if self.class_stack else None

    def function_names(self) -> list[str]:
        """Names of every function enclosing the current node,
        outermost first."""
        return [f.name for f in self.func_stack]


class Project:
    """Cross-file state handed to :meth:`Rule.finish`."""

    def __init__(self) -> None:
        self.modules: list[ModuleContext] = []
        self.findings: list[Finding] = []

    def report(self, rule: Rule, path: str, line: int, col: int,
               message: str) -> None:
        self.findings.append(Finding(
            rule=rule.id, path=path, line=line, col=col,
            message=message, severity=rule.severity))


@dataclass
class Report:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        if self.parse_errors:
            return 2
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def to_json(self, rules: list[Rule]) -> dict:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": [rule_json(rule) for rule in rules],
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "suppressed": len(self.suppressed),
            },
        }


def rule_json(rule: Rule) -> dict:
    return {"id": rule.id, "severity": rule.severity,
            "contract": rule.contract,
            "paths": list(rule.paths) if rule.paths else ["*"]}


class _SuppressionRule(Rule):
    """Meta rule: the suppression mechanism itself must stay honest.

    Registered like any other rule so it appears in ``--list-rules``,
    can be selected, and is exercised by fixtures — but its findings
    are produced by the engine's suppression pass, not an AST visitor.
    """

    id = SUPPRESSION_RULE_ID
    contract = ("every `# repolint: ignore[...]` carries a `-- reason`;"
                " a reasonless suppression suppresses nothing and is "
                "itself a finding")


SUPPRESSION_RULE = _SuppressionRule()


@dataclass
class _Suppression:
    line: int
    ids: frozenset[str]
    reason: str | None
    used: bool = False


def _parse_suppressions(lines: list[str]) -> list[_Suppression]:
    out = []
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS.search(line)
        if match is None:
            continue
        ids = frozenset(part.strip() for part in
                        match.group(1).split(",") if part.strip())
        out.append(_Suppression(lineno, ids, match.group("reason")))
    return out


class Engine:
    """Runs a battery of rules over a file tree."""

    def __init__(self, rules: list[Rule]):
        self.rules = rules

    # -- file discovery -------------------------------------------------------

    @staticmethod
    def discover(paths: list[str | Path], root: Path) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return [f for f in files if "__pycache__" not in f.parts]

    # -- the walk -------------------------------------------------------------

    def run(self, paths: list[str | Path],
            root: str | Path | None = None) -> Report:
        root = Path(root) if root is not None else Path.cwd()
        report = Report()
        project = Project()
        for file in self.discover(paths, root):
            try:
                relpath = file.relative_to(root).as_posix()
            except ValueError:
                relpath = file.as_posix()
            try:
                text = file.read_text(encoding="utf-8")
                tree = ast.parse(text, filename=str(file))
            except (OSError, SyntaxError) as exc:
                report.parse_errors.append(f"{relpath}: {exc}")
                continue
            report.files_scanned += 1
            self._lint_module(relpath, tree, text, report, project)
        for rule in self.rules:
            rule.finish(project)
        self._apply_suppressions_project(project, report)
        return report

    def _lint_module(self, relpath: str, tree: ast.Module, text: str,
                     report: Report, project: Project) -> None:
        active = [r for r in self.rules if r.applies_to(relpath)]
        ctx = ModuleContext(relpath, tree, text)
        project.modules.append(ctx)
        if not active:
            return
        for rule in active:
            rule.begin_module(ctx)
        self._walk(tree, ctx, active)
        for rule in active:
            rule.end_module(ctx)
        suppressions = _parse_suppressions(ctx.lines)
        for finding in ctx._findings:
            self._suppress(finding, suppressions, ctx.lines)
            (report.suppressed if finding.suppressed
             else report.findings).append(finding)
        meta_active = any(r.id == SUPPRESSION_RULE_ID for r in active)
        for sup in suppressions:
            if meta_active and sup.reason is None:
                report.findings.append(Finding(
                    rule=SUPPRESSION_RULE_ID, path=relpath,
                    line=sup.line, col=0,
                    message=("suppression without a reason: write "
                             "`# repolint: ignore[rule-id] -- why "
                             "this is safe`"),
                    severity=SUPPRESSION_RULE.severity))

    def _walk(self, node: ast.AST, ctx: ModuleContext,
              rules: list[Rule]) -> None:
        method = f"visit_{type(node).__name__}"
        for rule in rules:
            hook = getattr(rule, method, None)
            if hook is not None:
                hook(node, ctx)
        if isinstance(node, ast.ClassDef):
            ctx.class_stack.append(node)
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, rules)
            ctx.class_stack.pop()
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx.func_stack.append(node)
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, rules)
            ctx.func_stack.pop()
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            # Visit the context expressions *outside* the block (a lock
            # is not held while being acquired), then walk the body
            # with them pushed.
            for item in node.items:
                self._walk(item.context_expr, ctx, rules)
                if item.optional_vars is not None:
                    self._walk(item.optional_vars, ctx, rules)
            pushed = [item.context_expr for item in node.items]
            ctx.with_stack.extend(pushed)
            for stmt in node.body:
                self._walk(stmt, ctx, rules)
            del ctx.with_stack[len(ctx.with_stack) - len(pushed):]
        else:
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, rules)

    # -- suppressions ---------------------------------------------------------

    @staticmethod
    def _suppress(finding: Finding, suppressions: list[_Suppression],
                  lines: list[str]) -> None:
        for sup in suppressions:
            if finding.rule not in sup.ids or sup.reason is None:
                continue
            own_line = sup.line == finding.line
            # A suppression on its own comment line covers the next
            # source line.
            above = (sup.line == finding.line - 1
                     and sup.line <= len(lines)
                     and lines[sup.line - 1].lstrip().startswith("#"))
            if own_line or above:
                finding.suppressed = True
                finding.reason = sup.reason
                sup.used = True
                return

    def _apply_suppressions_project(self, project: Project,
                                    report: Report) -> None:
        """Cross-file findings honour suppressions too: look the
        target module's comments up by path."""
        by_path = {ctx.path: ctx for ctx in project.modules}
        for finding in project.findings:
            ctx = by_path.get(finding.path)
            if ctx is not None:
                self._suppress(finding,
                               _parse_suppressions(ctx.lines),
                               ctx.lines)
            (report.suppressed if finding.suppressed
             else report.findings).append(finding)


# -- shared AST helpers used by several rules ----------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``os.replace`` for ``Attribute(Name('os'), 'replace')``; None
    for expressions that are not simple dotted chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets, if statically evident."""
    return dotted_name(node.func)


def is_write_mode(call: ast.Call) -> bool:
    """True when an ``open(...)`` call opens for writing ('w', 'x',
    'a' or '+' in a literal mode). An unknown, non-literal mode counts
    as writing — the rules here would rather over-ask than miss a
    publish."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # default mode is 'r'
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wxa+")
    return True


def handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise`` — the only
    form that re-raises the original exception object unchanged (and
    therefore lets a BaseException-derived injected crash escape)."""
    return any(isinstance(node, ast.Raise) and node.exc is None
               for node in ast.walk(handler))
