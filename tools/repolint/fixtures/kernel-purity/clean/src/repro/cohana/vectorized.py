"""Clean twin: a pure Chunk -> ChunkPartial kernel."""

from repro.storage.chunk import Chunk
from repro.storage.reader import CompressedActivityTable


def scan(table: CompressedActivityTable, chunk: Chunk, plan):
    matched = [row for row in chunk if plan.admits(row)]
    return {"rows": len(matched)}
