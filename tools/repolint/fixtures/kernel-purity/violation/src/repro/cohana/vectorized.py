"""Seeded violation: a kernel with ambient effects."""

import time

from repro.storage.writer import compress

_CALLS = 0


def scan(chunk, plan):
    global _CALLS
    _CALLS += 1
    print("scanning", chunk)
    compress(chunk)
    return time.time()
