"""Suppressed twin: a temporary impurity, attributed and reasoned."""

import time  # repolint: ignore[kernel-purity] -- perf tracing during the bitpack rewrite; stripped before merge


def scan(chunk, plan):
    started = time.perf_counter()
    matched = [row for row in chunk if plan.admits(row)]
    return {"rows": len(matched), "seconds": time.perf_counter() - started}
