"""Seeded violation: a pool that is created, used, and never shut down."""

from concurrent.futures import ThreadPoolExecutor


def fan_out(tasks):
    pool = ThreadPoolExecutor(max_workers=4)
    futures = [pool.submit(task) for task in tasks]
    return [f.result() for f in futures]
