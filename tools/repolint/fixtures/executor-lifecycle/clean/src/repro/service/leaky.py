"""Clean twin: every accepted ownership shape for an executor."""

from concurrent.futures import ThreadPoolExecutor


def fan_out(tasks):
    with ThreadPoolExecutor(max_workers=4) as pool:
        return [f.result() for f in [pool.submit(t) for t in tasks]]


def fan_out_explicit(tasks):
    pool = ThreadPoolExecutor(max_workers=4)
    try:
        return [pool.submit(t).result() for t in tasks]
    finally:
        pool.shutdown(wait=True)


def _drain(pool, tasks):
    try:
        return [pool.submit(t).result() for t in tasks]
    finally:
        pool.shutdown(wait=True)


def fan_out_delegated(tasks):
    pool = ThreadPoolExecutor(max_workers=2)
    return _drain(pool, tasks)


class Server:
    def __init__(self):
        self._pool = ThreadPoolExecutor(max_workers=8)

    def close(self):
        self._pool.shutdown(wait=False)
