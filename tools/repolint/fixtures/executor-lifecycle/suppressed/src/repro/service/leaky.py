"""Suppressed twin: a process-lifetime pool, reasoned about explicitly."""

from concurrent.futures import ThreadPoolExecutor

_GLOBAL_POOL = ThreadPoolExecutor(max_workers=2)  # repolint: ignore[executor-lifecycle] -- process-lifetime pool; reaped by interpreter atexit hooks


def fan_out(tasks):
    return [_GLOBAL_POOL.submit(t).result() for t in tasks]
