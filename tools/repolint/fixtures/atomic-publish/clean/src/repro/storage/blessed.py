"""Clean twin: the same publish, inside the blessed seam."""

import os


def publish_manifest(directory, payload):
    tmp = directory + "/MANIFEST.json.tmp"
    with open(tmp, "w") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, directory + "/MANIFEST.json")


def read_manifest(directory):
    with open(directory + "/MANIFEST.json") as f:
        return f.read()
