"""Suppressed twin: the violation, attributed and reasoned away."""

import os


def migrate_legacy_manifest(directory):
    # repolint: ignore[atomic-publish, fsync-before-replace] -- one-shot v0->v1 migration shim; deleted after the format bump
    os.replace(directory + "/MANIFEST.v0", directory + "/MANIFEST.json")
