"""Seeded violation: publishes outside the blessed seam."""

import os


def sneaky_publish(directory, payload):
    # Writes a MANIFEST path and swaps files without going through
    # publish_manifest — both moves must be flagged.
    with open(directory + "/MANIFEST.json.tmp", "w") as f:
        f.write(payload)
    os.replace(directory + "/MANIFEST.json.tmp",
               directory + "/MANIFEST.json")
