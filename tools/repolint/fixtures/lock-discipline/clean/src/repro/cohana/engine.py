"""Clean twin: every mutation under the lock or a documented helper."""

import threading


class CohanaEngine:
    def __init__(self):
        self._catalog = {}
        self._versions = {}
        self._mem_version_counter = 0
        self._catalog_lock = threading.RLock()

    def register(self, name, table):
        with self._catalog_lock:
            self._catalog[name] = table
            self._stamp_version(name)

    def _stamp_version(self, name):
        """Record a fresh token. Caller holds ``self._catalog_lock``."""
        self._mem_version_counter += 1
        self._versions[name] = f"mem:{self._mem_version_counter}"

    def drop(self, name):
        with self._catalog_lock:
            del self._catalog[name]
            self._versions.pop(name, None)

    def table(self, name):
        return self._catalog[name]
