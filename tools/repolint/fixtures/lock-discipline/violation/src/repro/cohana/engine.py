"""Seeded violation: catalog state mutated without the catalog lock."""

import threading


class CohanaEngine:
    def __init__(self):
        self._catalog = {}
        self._versions = {}
        self._mem_version_counter = 0
        self._catalog_lock = threading.RLock()

    def register(self, name, table):
        # Unlocked read-modify-write of guarded state: both must flag.
        self._catalog[name] = table
        self._mem_version_counter += 1
        self._versions[name] = f"mem:{self._mem_version_counter}"

    def drop(self, name):
        del self._catalog[name]
        self._versions.pop(name, None)
