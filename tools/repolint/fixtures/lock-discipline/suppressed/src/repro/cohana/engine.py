"""Suppressed twin: a deliberate unlocked mutation, with its reason."""

import threading


class CohanaEngine:
    def __init__(self):
        self._catalog = {}
        self._catalog_lock = threading.RLock()

    def bulk_load_single_threaded(self, tables):
        for name, table in tables.items():
            # repolint: ignore[lock-discipline] -- startup path, provably before any worker thread exists
            self._catalog[name] = table
