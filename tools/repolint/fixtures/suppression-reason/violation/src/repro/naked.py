"""Seeded violation: a suppression with no reason suppresses nothing."""

import hashlib


def digest(payload):
    # repolint: ignore[determinism]
    return hashlib.sha256(payload).hexdigest()
