"""Clean twin: every suppression carries its justification."""

import hashlib


def digest(payload):
    # repolint: ignore[determinism] -- hashlib is deterministic; comment kept to document the audit
    return hashlib.sha256(payload).hexdigest()
