"""Seeded violation: handlers that swallow crash-injection exceptions."""


def load_manifest(path):
    try:
        return path.read_text(encoding="utf-8")
    except Exception:
        return None


def best_effort_cleanup(path):
    try:
        path.unlink()
    except:
        pass
