"""Clean twin: narrow handlers, and broad ones that re-raise."""

import json
import logging

log = logging.getLogger(__name__)


def load_manifest(path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def guarded_publish(path, payload):
    try:
        path.write_text(payload, encoding="utf-8")
    except BaseException:
        log.error("publish failed mid-write: %s", path)
        raise
