"""Suppressed twin: a deliberate best-effort sweep, reason on record."""


def sweep_orphans(paths):
    removed = 0
    for path in paths:
        try:
            path.unlink()
            removed += 1
        except Exception:  # repolint: ignore[crash-seam] -- orphan sweep is advisory; losing one unlink never corrupts the manifest
            continue
    return removed
