"""Clean twin: one global order, including through a helper call."""

import threading

_ALPHA_LOCK = threading.Lock()
_BETA_LOCK = threading.Lock()


def _inner():
    with _BETA_LOCK:
        return "b"


def forward():
    with _ALPHA_LOCK:
        with _BETA_LOCK:
            return "a-then-b"


def also_forward():
    with _ALPHA_LOCK:
        return _inner()
