"""Seeded violation: two locks acquired in opposite orders."""

import threading

_ALPHA_LOCK = threading.Lock()
_BETA_LOCK = threading.Lock()


def forward():
    with _ALPHA_LOCK:
        with _BETA_LOCK:
            return "a-then-b"


def backward():
    with _BETA_LOCK:
        with _ALPHA_LOCK:
            return "b-then-a"
