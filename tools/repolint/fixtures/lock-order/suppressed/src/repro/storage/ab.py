"""Suppressed twin: a known, reasoned-away ordering conflict."""

import threading

_ALPHA_LOCK = threading.Lock()
_BETA_LOCK = threading.Lock()


def forward():
    with _ALPHA_LOCK:
        # repolint: ignore[lock-order] -- beta is only ever tried with a timeout here; documented in the module header
        with _BETA_LOCK:
            return "a-then-b"


def backward():
    with _BETA_LOCK:
        with _ALPHA_LOCK:
            return "b-then-a"
