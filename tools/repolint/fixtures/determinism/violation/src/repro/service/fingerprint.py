"""Seeded violation: wall-clock and randomness in a fingerprint module."""

import time
import uuid


def fingerprint(plan):
    nonce = uuid.uuid4().hex
    stamped = "%s@%f" % (nonce, time.time())
    return stamped + repr(plan)
