"""Clean twin: content-addressed hashing only."""

import hashlib
import json


def fingerprint(plan):
    canonical = json.dumps(plan, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
