"""Suppressed twin: a debug-only timing import with its reason pinned."""

import hashlib
import json
import time  # repolint: ignore[determinism] -- local profiling only; value never reaches the digest


def fingerprint(plan):
    canonical = json.dumps(plan, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
