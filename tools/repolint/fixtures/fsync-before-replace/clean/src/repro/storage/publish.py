"""Clean twin: flush + fsync before the atomic rename."""

import os


def publish(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
