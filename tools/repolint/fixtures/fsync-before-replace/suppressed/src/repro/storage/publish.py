"""Suppressed twin: a scratch-file swap that is allowed to lose data."""

import os


def swap_scratch(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(payload)
    # repolint: ignore[fsync-before-replace, atomic-publish] -- scratch cache only; rebuilt from shards on any read miss
    os.replace(tmp, path)
