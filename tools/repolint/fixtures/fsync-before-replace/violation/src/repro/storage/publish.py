"""Seeded violation: tmp-write then rename with no fsync in between."""

import os


def publish(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(payload)
    os.replace(tmp, path)
