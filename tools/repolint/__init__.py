"""repolint — AST-based invariant checker for this repository.

Generic linters see style; this tool sees the engine's contracts:
atomic manifest publishes, catalog-lock discipline, lock-order
acyclicity, kernel purity, crash-seam exception hygiene, executor
lifecycles, fingerprint determinism, and fsync-before-replace. Run
``python -m tools.repolint src/ --strict`` (CI does, on every push)
or ``--list-rules`` for the battery; ARCHITECTURE.md's "Static
invariants" section maps each rule to the prose contract it enforces.
"""

from tools.repolint.core import (
    Engine,
    Finding,
    ModuleContext,
    Project,
    Report,
    Rule,
)
from tools.repolint.rules import all_rules

__all__ = [
    "Engine",
    "Finding",
    "ModuleContext",
    "Project",
    "Report",
    "Rule",
    "all_rules",
]
