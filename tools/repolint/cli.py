"""repolint command line: lint, list rules, or self-check fixtures.

Usage::

    python -m tools.repolint src/                 # lint the tree
    python -m tools.repolint src/ --strict        # warnings fail too
    python -m tools.repolint --list-rules         # the rule table
    python -m tools.repolint --self-check         # fixtures gauntlet
    python -m tools.repolint src/ --json out.json # machine findings

Exit codes: 0 clean, 1 findings (or a self-check failure), 2 usage /
unparsable source. The self-check is CI's proof that the analyzer
itself works: every rule must fire on its seeded ``violation``
fixture tree, stay silent on its ``clean`` tree, and (where present)
honour a reasoned suppression in its ``suppressed`` tree — a rule
that never fires on its own fixture fails the build.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.repolint.core import Engine, Report, Rule, rule_json
from tools.repolint.rules import all_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m tools.repolint",
        description=("AST-based invariant checker for this engine's "
                     "concurrency, crash-safety and kernel-purity "
                     "contracts"))
    p.add_argument("paths", nargs="*", default=None,
                   help="files or directories to lint (default: src)")
    p.add_argument("--strict", action="store_true",
                   help="warnings fail the run too")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated rule ids to run (default all)")
    p.add_argument("--json", metavar="FILE", dest="json_out",
                   help="write the JSON report to FILE ('-' = stdout)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    p.add_argument("--self-check", action="store_true",
                   help="run every rule against its seeded fixtures")
    p.add_argument("--root", default=".",
                   help="paths in output are relative to this "
                        "directory (default: cwd)")
    return p


def _select(rules: list[Rule], spec: str | None) -> list[Rule]:
    if spec is None:
        return rules
    wanted = {part.strip() for part in spec.split(",") if part.strip()}
    known = {rule.id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"repolint: unknown rule id(s): {', '.join(sorted(unknown))}"
            f" (see --list-rules)")
    return [rule for rule in rules if rule.id in wanted]


def list_rules(rules: list[Rule]) -> str:
    width = max(len(rule.id) for rule in rules)
    lines = []
    for rule in rules:
        scope = ("everywhere" if rule.paths is None
                 else ", ".join(rule.paths))
        lines.append(f"{rule.id:<{width}}  [{rule.severity}] "
                     f"{rule.contract}")
        lines.append(f"{'':<{width}}  scope: {scope}")
    return "\n".join(lines)


def _emit(report: Report, rules: list[Rule], json_out: str | None,
          quiet: bool = False) -> None:
    if json_out:
        payload = json.dumps(report.to_json(rules), indent=2,
                             sort_keys=True) + "\n"
        if json_out == "-":
            sys.stdout.write(payload)
        else:
            Path(json_out).write_text(payload, encoding="utf-8")
    if quiet:
        return
    for problem in report.parse_errors:
        print(f"error: cannot parse {problem}", file=sys.stderr)
    for finding in sorted(report.findings,
                          key=lambda f: (f.path, f.line, f.col)):
        print(finding.render())
    print(f"repolint: {len(report.findings)} finding(s) "
          f"({len(report.errors)} error(s), "
          f"{len(report.warnings)} warning(s)), "
          f"{len(report.suppressed)} suppressed, "
          f"{report.files_scanned} file(s) scanned")


def self_check(rules: list[Rule], verbose: bool = True) -> int:
    """Prove every rule fires on its seeded violation and stays quiet
    on its clean twin. Returns the number of failing rules."""
    failures = 0
    for rule in rules:
        rule_dir = FIXTURES / rule.id
        problems: list[str] = []
        if not rule_dir.is_dir():
            problems.append("no fixture directory — every rule ships "
                            "a seeded violation")
        else:
            problems.extend(_check_case(rule, rule_dir / "violation",
                                        expect="fire"))
            problems.extend(_check_case(rule, rule_dir / "clean",
                                        expect="silent"))
            if (rule_dir / "suppressed").is_dir():
                problems.extend(_check_case(
                    rule, rule_dir / "suppressed", expect="suppressed"))
        status = "ok" if not problems else "FAIL"
        if verbose or problems:
            print(f"self-check {rule.id}: {status}")
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        if problems:
            failures += 1
    return failures


def _check_case(rule: Rule, case_dir: Path, expect: str) -> list[str]:
    if not case_dir.is_dir():
        return [f"missing fixture tree: {case_dir.name}/"]
    # The full battery runs (fixtures may legitimately trip other
    # rules); assertions are about the rule under test only.
    report = Engine(all_rules()).run([case_dir], root=case_dir)
    if report.parse_errors:
        return [f"{case_dir.name}/: unparsable fixture: "
                f"{report.parse_errors[0]}"]
    fired = [f for f in report.findings if f.rule == rule.id]
    suppressed = [f for f in report.suppressed if f.rule == rule.id]
    if expect == "fire" and not fired:
        return [f"{case_dir.name}/: rule did not fire on its seeded "
                f"violation"]
    if expect == "silent" and fired:
        return [f"{case_dir.name}/: rule fired on clean code: "
                f"{fired[0].render()}"]
    if expect == "suppressed":
        if fired:
            return [f"{case_dir.name}/: suppression did not take: "
                    f"{fired[0].render()}"]
        if not suppressed:
            return [f"{case_dir.name}/: nothing was suppressed — the "
                    f"fixture no longer violates the rule"]
    return []


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    rules = _select(all_rules(), args.select)
    if args.list_rules:
        print(list_rules(rules))
        return 0
    if args.self_check:
        failures = self_check(rules)
        total = len(rules)
        print(f"repolint self-check: {total - failures}/{total} "
              f"rules verified against seeded fixtures")
        return 1 if failures else 0
    paths = args.paths or ["src"]
    report = Engine(rules).run(paths, root=Path(args.root))
    _emit(report, rules, args.json_out)
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
