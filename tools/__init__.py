# Namespace package marker so `python -m tools.repolint` resolves from
# the repository root. The standalone scripts in this directory
# (check_docs.py, bench_report.py, serve_smoke.py) are still run by
# path and do not import through the package.
