#!/usr/bin/env python3
"""Aggregate ``BENCH_*.json`` records into one Markdown report.

Every recorded experiment (``benchmarks/run_all.py``) writes a JSON
payload — parallel scaling, compressed-domain scans, the service
cache, the HTTP serving tier, shard appends, materialized views. This
tool renders them as a
single Markdown document: a summary table (one row per experiment with
its pass/fail verdicts) followed by a per-experiment trajectory table,
so a CI run's bench-smoke artifacts read as one page instead of five
JSON blobs. Stdlib only.

Usage::

    python tools/bench_report.py                   # ./BENCH_*.json
    python tools/bench_report.py BENCH_views.json  # specific files
    python tools/bench_report.py --out BENCH_REPORT.md
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Top-level list-of-dict keys rendered as tables, in display order.
_TABLE_KEYS = ("steps", "summary", "records", "selective_scan", "parity")

#: Keys carrying per-experiment context worth a one-line mention.
_CONTEXT_KEYS = ("seed", "scale", "n_batches", "chunk_rows", "jobs",
                 "cpus", "query", "concurrency", "requests_per_worker")


def _fmt(value) -> str:
    """One Markdown table cell."""
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:.5f}".rstrip("0").rstrip(".") or "0"
    if value is None:
        return "-"
    return str(value).replace("|", "\\|")


def _table(rows: list[dict]) -> list[str]:
    """Render dict rows as a Markdown table (first row fixes the
    column order; later-only keys are appended)."""
    columns = list(rows[0])
    for row in rows[1:]:
        columns.extend(k for k in row if k not in columns)
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(k))
                                       for k in columns) + " |")
    return lines


def _verdicts(payload: dict) -> dict[str, bool]:
    """The experiment's pass/fail flags (``*_ok`` by convention)."""
    return {k: v for k, v in payload.items()
            if k.endswith("_ok") and isinstance(v, bool)}


def _section(path: Path, payload: dict) -> list[str]:
    name = payload.get("experiment", path.stem)
    lines = [f"## {name} (`{path.name}`)", ""]
    context = ", ".join(f"{k}={payload[k]}" for k in _CONTEXT_KEYS
                        if k in payload)
    if context:
        lines += [context, ""]
    for key in _TABLE_KEYS:
        rows = payload.get(key)
        if (isinstance(rows, list) and rows
                and all(isinstance(r, dict) for r in rows)):
            if key != "steps":
                lines += [f"### {key}", ""]
            lines += _table(rows) + [""]
    backends = payload.get("backends")
    if isinstance(backends, dict) and backends:
        lines += ["### backends", ""]
        lines += _table([{"backend": name, **record}
                         for name, record in backends.items()]) + [""]
    verdicts = _verdicts(payload)
    if verdicts:
        lines += ["Checks: " + ", ".join(
            f"{k}={_fmt(v)}" for k, v in verdicts.items()), ""]
    return lines


def render(paths: list[Path]) -> tuple[str, bool]:
    """The full report and whether every verdict in it passed."""
    loaded = []
    for path in paths:
        try:
            loaded.append((path, json.loads(
                path.read_text(encoding="utf-8"))))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
    lines = ["# Benchmark report", ""]
    summary = []
    all_ok = True
    for path, payload in loaded:
        verdicts = _verdicts(payload)
        all_ok = all_ok and all(verdicts.values())
        summary.append({
            "experiment": payload.get("experiment", path.stem),
            "file": path.name,
            "checks": ", ".join(f"{k}={_fmt(v)}"
                                for k, v in verdicts.items()) or "-",
        })
    if summary:
        lines += _table(summary) + [""]
    for path, payload in loaded:
        lines += _section(path, payload)
    return "\n".join(lines).rstrip() + "\n", all_ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="render BENCH_*.json records as one Markdown report")
    parser.add_argument("files", nargs="*", type=Path,
                        help="benchmark JSON files "
                             "(default: ./BENCH_*.json)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any *_ok verdict is false")
    args = parser.parse_args(argv)
    paths = args.files or sorted(Path.cwd().glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 2
    report, all_ok = render(list(paths))
    if args.out:
        args.out.write_text(report, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(report, end="")
    return 0 if (all_ok or not args.strict) else 1


if __name__ == "__main__":
    raise SystemExit(main())
